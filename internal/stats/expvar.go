package stats

import (
	"expvar"
	"sync"
	"sync/atomic"
)

// published maps expvar names to the swappable registry pointer behind
// them. expvar.Publish panics on duplicate names, so each name is published
// exactly once and later calls swap the pointer instead.
var published struct {
	mu sync.Mutex
	m  map[string]*atomic.Pointer[Registry]
}

// PublishExpvar exports r's live snapshot under name on the process-wide
// expvar page (served by any net/http server at /debug/vars). Calling it
// again with the same name atomically swaps in the new registry — batch
// CLIs publish a fresh registry per run without tripping expvar's
// duplicate-name panic.
func PublishExpvar(name string, r *Registry) {
	published.mu.Lock()
	defer published.mu.Unlock()
	if published.m == nil {
		published.m = make(map[string]*atomic.Pointer[Registry])
	}
	p, ok := published.m[name]
	if !ok {
		p = &atomic.Pointer[Registry]{}
		published.m[name] = p
		expvar.Publish(name, expvar.Func(func() any {
			if reg := p.Load(); reg != nil {
				return reg.Snapshot()
			}
			return Snapshot{}
		}))
	}
	p.Store(r)
}

// publishedRegistries returns the current name -> registry view of every
// PublishExpvar name (nil registries omitted). The /metrics handler of
// ServeDebug renders all of them, so publishing once surfaces a registry on
// both expvar and Prometheus.
func publishedRegistries() map[string]*Registry {
	published.mu.Lock()
	defer published.mu.Unlock()
	out := make(map[string]*Registry, len(published.m))
	for name, p := range published.m {
		if reg := p.Load(); reg != nil {
			out[name] = reg
		}
	}
	return out
}

// publishedRings mirrors the registry table for event rings: PublishEvents
// makes a ring reachable over HTTP at /debug/events on any ServeDebug
// server, so -evtrace data is inspectable on a live process rather than
// only in batch -stats dumps.
var publishedRings struct {
	mu sync.Mutex
	m  map[string]*Ring
}

// PublishEvents exposes r's retained events under name on /debug/events.
// Re-publishing a name swaps the ring; a nil ring removes it.
func PublishEvents(name string, r *Ring) {
	publishedRings.mu.Lock()
	defer publishedRings.mu.Unlock()
	if publishedRings.m == nil {
		publishedRings.m = make(map[string]*Ring)
	}
	if r == nil {
		delete(publishedRings.m, name)
		return
	}
	publishedRings.m[name] = r
}

// publishedRingsView snapshots the published ring table.
func publishedRingsView() map[string]*Ring {
	publishedRings.mu.Lock()
	defer publishedRings.mu.Unlock()
	out := make(map[string]*Ring, len(publishedRings.m))
	for name, r := range publishedRings.m {
		out[name] = r
	}
	return out
}

// publishedTracers is the same table for span tracers, behind /debug/trace.
var publishedTracers struct {
	mu sync.Mutex
	m  map[string]*Tracer
}

// PublishTrace exposes t's spans as Chrome trace_event JSON under name on
// /debug/trace. Re-publishing a name swaps the tracer; nil removes it.
func PublishTrace(name string, t *Tracer) {
	publishedTracers.mu.Lock()
	defer publishedTracers.mu.Unlock()
	if publishedTracers.m == nil {
		publishedTracers.m = make(map[string]*Tracer)
	}
	if t == nil {
		delete(publishedTracers.m, name)
		return
	}
	publishedTracers.m[name] = t
}

// publishedTracersView snapshots the published tracer table.
func publishedTracersView() map[string]*Tracer {
	publishedTracers.mu.Lock()
	defer publishedTracers.mu.Unlock()
	out := make(map[string]*Tracer, len(publishedTracers.m))
	for name, t := range publishedTracers.m {
		out[name] = t
	}
	return out
}
