package stats

import (
	"expvar"
	"sync"
	"sync/atomic"
)

// published maps expvar names to the swappable registry pointer behind
// them. expvar.Publish panics on duplicate names, so each name is published
// exactly once and later calls swap the pointer instead.
var published struct {
	mu sync.Mutex
	m  map[string]*atomic.Pointer[Registry]
}

// PublishExpvar exports r's live snapshot under name on the process-wide
// expvar page (served by any net/http server at /debug/vars). Calling it
// again with the same name atomically swaps in the new registry — batch
// CLIs publish a fresh registry per run without tripping expvar's
// duplicate-name panic.
func PublishExpvar(name string, r *Registry) {
	published.mu.Lock()
	defer published.mu.Unlock()
	if published.m == nil {
		published.m = make(map[string]*atomic.Pointer[Registry])
	}
	p, ok := published.m[name]
	if !ok {
		p = &atomic.Pointer[Registry]{}
		published.m[name] = p
		expvar.Publish(name, expvar.Func(func() any {
			if reg := p.Load(); reg != nil {
				return reg.Snapshot()
			}
			return Snapshot{}
		}))
	}
	p.Store(r)
}
