package stats

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) for Registry contents.
// The encoder is deliberately dependency-free: counters and gauges emit one
// sample each, histograms emit the classic _bucket/_sum/_count family with
// cumulative le bounds. Output is deterministic — metric names sort, bucket
// bounds ascend — so tests can pin it byte for byte.

// promName converts a dotted registry name into a Prometheus metric name:
// dots and dashes become underscores and an optional namespace prefixes the
// result ("tcord" + "serve.http.latency" -> "tcord_serve_http_latency").
func promName(namespace, name string) string {
	r := strings.NewReplacer(".", "_", "-", "_", " ", "_")
	if namespace == "" {
		return r.Replace(name)
	}
	return r.Replace(namespace) + "_" + r.Replace(name)
}

// WritePrometheus writes every metric of r in Prometheus text exposition
// format, metric names prefixed with namespace. Counters and gauges carry
// their registered kind; histogram values are emitted verbatim (the repo
// convention is nanoseconds for latency histograms, and the unit is part of
// the metric's documentation rather than rescaled here).
func (r *Registry) WritePrometheus(w io.Writer, namespace string) error {
	r.mu.RLock()
	counters := make(map[string]int64, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c.Load()
	}
	gauges := make(map[string]int64, len(r.gauges))
	for n, g := range r.gauges {
		// The counter wins name collisions, matching Snapshot.
		if _, taken := r.counters[n]; !taken {
			gauges[n] = g.Load()
		}
	}
	hists := make(map[string]HistogramSnapshot, len(r.histograms))
	for n, h := range r.histograms {
		hists[n] = h.Snapshot()
	}
	r.mu.RUnlock()

	names := make([]string, 0, len(counters)+len(gauges)+len(hists))
	for n := range counters {
		names = append(names, n)
	}
	for n := range gauges {
		names = append(names, n)
	}
	for n := range hists {
		names = append(names, n)
	}
	sort.Strings(names)

	for _, n := range names {
		pn := promName(namespace, n)
		if v, ok := counters[n]; ok {
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, v); err != nil {
				return err
			}
			continue
		}
		if v, ok := gauges[n]; ok {
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, v); err != nil {
				return err
			}
			continue
		}
		if err := writePromHistogram(w, pn, hists[n]); err != nil {
			return err
		}
	}
	return nil
}

// writePromHistogram emits one histogram family with cumulative buckets.
func writePromHistogram(w io.Writer, pn string, s HistogramSnapshot) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
		return err
	}
	return WritePromHistogramSamples(w, pn, "", s)
}

// WritePromHistogramSamples emits one histogram family's samples (no TYPE
// line) with cumulative buckets, appending extraLabels (e.g. `shard="fleet"`)
// to every sample when non-empty. Only buckets up to the highest non-empty
// one are listed (plus +Inf), so an idle histogram is three lines, not
// sixty-seven. The cluster metrics rollup emits shard-labeled and fleet
// families with it.
func WritePromHistogramSamples(w io.Writer, pn, extraLabels string, s HistogramSnapshot) error {
	bucketFmt, tailFmt := "%s_bucket{le=\"%d\"} %d\n", "%s_sum %d\n%s_count %d\n"
	infFmt := "%s_bucket{le=\"+Inf\"} %d\n"
	if extraLabels != "" {
		bucketFmt = "%s_bucket{le=\"%d\"," + extraLabels + "} %d\n"
		infFmt = "%s_bucket{le=\"+Inf\"," + extraLabels + "} %d\n"
		tailFmt = "%s_sum{" + extraLabels + "} %d\n%s_count{" + extraLabels + "} %d\n"
	}
	last := -1
	for i, n := range s.Buckets {
		if n != 0 {
			last = i
		}
	}
	var cum int64
	for i := 0; i <= last && i < HistogramBuckets-1; i++ {
		cum += s.Buckets[i]
		if _, err := fmt.Fprintf(w, bucketFmt, pn, BucketUpper(i), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, infFmt, pn, s.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, tailFmt, pn, s.Sum, pn, s.Count); err != nil {
		return err
	}
	return nil
}

// MetricsHandler serves r in Prometheus text exposition format under the
// given namespace — mount it at /metrics.
func MetricsHandler(namespace string, r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w, namespace) //nolint:errcheck // best-effort over HTTP
	})
}
