package stats

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"net/http"
	"sync/atomic"
)

// W3C-style trace identity. A request entering the cluster gets a 16-byte
// trace ID that every process touching it inherits; each span within the
// request gets an 8-byte span ID. The pair travels between processes in the
// `traceparent` header (https://www.w3.org/TR/trace-context/):
//
//	traceparent: 00-<32 hex trace-id>-<16 hex parent-span-id>-<2 hex flags>
//
// The serve middleware extracts it (minting a fresh trace when absent), the
// typed client and the cluster gateway inject it on every outbound hop, and
// the gateway's trace collector stitches the per-process span sets back into
// one export by following the remote-parent links the header carried.

// TraceID is the 16-byte identity one request keeps across every process.
type TraceID [16]byte

// SpanID is the 8-byte identity of one span within a trace.
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zero value.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// IsZero reports whether the ID is the invalid all-zero value.
func (id SpanID) IsZero() bool { return id == SpanID{} }

// String returns the 32-char lowercase hex form.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// String returns the 16-char lowercase hex form.
func (id SpanID) String() string { return hex.EncodeToString(id[:]) }

// ParseTraceID parses the 32-char hex form. The all-zero ID is rejected:
// the spec reserves it as "no trace".
func ParseTraceID(s string) (TraceID, error) {
	var id TraceID
	if len(s) != 32 {
		return id, fmt.Errorf("stats: trace ID %q is %d chars, want 32", s, len(s))
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return TraceID{}, fmt.Errorf("stats: trace ID %q: %v", s, err)
	}
	if id.IsZero() {
		return TraceID{}, fmt.Errorf("stats: trace ID is all zero")
	}
	return id, nil
}

// ParseSpanID parses the 16-char hex form, rejecting the all-zero ID.
func ParseSpanID(s string) (SpanID, error) {
	var id SpanID
	if len(s) != 16 {
		return id, fmt.Errorf("stats: span ID %q is %d chars, want 16", s, len(s))
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return SpanID{}, fmt.Errorf("stats: span ID %q: %v", s, err)
	}
	if id.IsZero() {
		return SpanID{}, fmt.Errorf("stats: span ID is all zero")
	}
	return id, nil
}

// TraceContext is the propagated slice of a span's identity: enough for a
// downstream process to join the same trace and link its root span back to
// the caller's span.
type TraceContext struct {
	TraceID TraceID
	SpanID  SpanID
	Flags   byte // bit 0 = sampled; everything this repo emits is sampled
}

// Valid reports whether the context identifies a trace (non-zero trace and
// span IDs).
func (tc TraceContext) Valid() bool { return !tc.TraceID.IsZero() && !tc.SpanID.IsZero() }

// Traceparent renders the context in W3C header form (version 00).
func (tc TraceContext) Traceparent() string {
	buf := make([]byte, 0, 55)
	buf = append(buf, "00-"...)
	buf = hex.AppendEncode(buf, tc.TraceID[:])
	buf = append(buf, '-')
	buf = hex.AppendEncode(buf, tc.SpanID[:])
	buf = append(buf, '-')
	buf = hex.AppendEncode(buf, []byte{tc.Flags})
	return string(buf)
}

// ParseTraceparent parses a traceparent header value. Unknown future
// versions are accepted as long as the first four fields parse (per spec);
// version "ff" and malformed or all-zero IDs are rejected.
func ParseTraceparent(s string) (TraceContext, error) {
	var tc TraceContext
	if len(s) < 55 {
		return tc, fmt.Errorf("stats: traceparent %q too short", s)
	}
	if s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return tc, fmt.Errorf("stats: traceparent %q malformed", s)
	}
	var version [1]byte
	if _, err := hex.Decode(version[:], []byte(s[0:2])); err != nil {
		return tc, fmt.Errorf("stats: traceparent version %q: %v", s[0:2], err)
	}
	if version[0] == 0xff {
		return tc, fmt.Errorf("stats: traceparent version ff is invalid")
	}
	if version[0] == 0 && len(s) != 55 {
		return tc, fmt.Errorf("stats: version-00 traceparent %q is %d chars, want 55", s, len(s))
	}
	tid, err := ParseTraceID(s[3:35])
	if err != nil {
		return tc, err
	}
	sid, err := ParseSpanID(s[36:52])
	if err != nil {
		return tc, err
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(s[53:55])); err != nil {
		return tc, fmt.Errorf("stats: traceparent flags %q: %v", s[53:55], err)
	}
	return TraceContext{TraceID: tid, SpanID: sid, Flags: flags[0]}, nil
}

// TraceparentHeader is the propagation header's canonical name.
const TraceparentHeader = "Traceparent"

// InjectTraceparent sets the traceparent header from tc. An invalid context
// (the nil span's) injects nothing, so disabled tracing stays header-free.
func InjectTraceparent(h http.Header, tc TraceContext) {
	if !tc.Valid() {
		return
	}
	h.Set(TraceparentHeader, tc.Traceparent())
}

// ExtractTraceparent parses the traceparent header, reporting whether a
// valid context was present. Absent or malformed headers are (zero, false):
// the caller mints a fresh trace rather than failing the request.
func ExtractTraceparent(h http.Header) (TraceContext, bool) {
	v := h.Get(TraceparentHeader)
	if v == "" {
		return TraceContext{}, false
	}
	tc, err := ParseTraceparent(v)
	if err != nil {
		return TraceContext{}, false
	}
	return tc, true
}

// idState drives span/trace ID minting: a splitmix64 sequence over an
// atomic counter seeded from crypto/rand at process start. IDs are unique
// within a process and collision-resistant across processes without taking
// a lock or a syscall per span — per-tile simulation spans mint thousands
// per frame.
var idState atomic.Uint64

func init() {
	var seed [8]byte
	if _, err := rand.Read(seed[:]); err == nil {
		idState.Store(binary.LittleEndian.Uint64(seed[:]))
	} else {
		// A broken crypto/rand leaves IDs unique-per-process but
		// predictable; keep tracing functional anyway.
		idState.Store(0x6a09e667f3bcc908)
	}
}

// nextID returns the next pseudorandom 64-bit ID word (never 0).
func nextID() uint64 {
	for {
		x := idState.Add(0x9e3779b97f4a7c15) // golden-ratio increment (splitmix64)
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		if x != 0 {
			return x
		}
	}
}

// NewTraceID mints a fresh random trace ID.
func NewTraceID() TraceID {
	var id TraceID
	binary.BigEndian.PutUint64(id[0:8], nextID())
	binary.BigEndian.PutUint64(id[8:16], nextID())
	return id
}

// NewSpanID mints a fresh random span ID.
func NewSpanID() SpanID {
	var id SpanID
	binary.BigEndian.PutUint64(id[:], nextID())
	return id
}
