package stats

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tc := TraceContext{TraceID: NewTraceID(), SpanID: NewSpanID(), Flags: 1}
	s := tc.Traceparent()
	if len(s) != 55 {
		t.Fatalf("traceparent %q is %d chars, want 55", s, len(s))
	}
	if !strings.HasPrefix(s, "00-") {
		t.Fatalf("traceparent %q does not carry version 00", s)
	}
	got, err := ParseTraceparent(s)
	if err != nil {
		t.Fatal(err)
	}
	if got != tc {
		t.Fatalf("round trip changed the context: %+v != %+v", got, tc)
	}
}

func TestTraceparentRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"00-abc",
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace ID
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // zero span ID
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // version ff
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra",
		"00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		"00-4bf92f3577b34da6a3ce929d0e0e47zz-00f067aa0ba902b7-01",
	}
	for _, s := range bad {
		if _, err := ParseTraceparent(s); err == nil {
			t.Errorf("ParseTraceparent(%q) accepted a malformed value", s)
		}
	}
	// A future version with trailing fields parses (the spec says ignore
	// what you don't understand).
	future := "cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-what-ever"
	tc, err := ParseTraceparent(future)
	if err != nil {
		t.Fatalf("future-version traceparent rejected: %v", err)
	}
	if tc.TraceID.String() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("future-version trace ID = %s", tc.TraceID)
	}
}

func TestInjectExtractHeader(t *testing.T) {
	h := make(http.Header)
	if _, ok := ExtractTraceparent(h); ok {
		t.Fatal("extracted a context from empty headers")
	}
	// The invalid zero context injects nothing — the disabled-tracing path.
	InjectTraceparent(h, TraceContext{})
	if h.Get(TraceparentHeader) != "" {
		t.Fatal("zero context set a traceparent header")
	}
	tc := TraceContext{TraceID: NewTraceID(), SpanID: NewSpanID(), Flags: 1}
	InjectTraceparent(h, tc)
	got, ok := ExtractTraceparent(h)
	if !ok || got != tc {
		t.Fatalf("Extract(Inject(tc)) = %+v, %v; want %+v", got, ok, tc)
	}
	// A garbage header extracts as absent, not as an error.
	h.Set(TraceparentHeader, "not-a-traceparent")
	if _, ok := ExtractTraceparent(h); ok {
		t.Fatal("extracted a context from a malformed header")
	}
}

func TestMintedIDsUnique(t *testing.T) {
	seenT := make(map[TraceID]bool)
	seenS := make(map[SpanID]bool)
	for i := 0; i < 10000; i++ {
		tid, sid := NewTraceID(), NewSpanID()
		if tid.IsZero() || sid.IsZero() {
			t.Fatal("minted a zero ID")
		}
		if seenT[tid] || seenS[sid] {
			t.Fatalf("ID collision after %d mints", i)
		}
		seenT[tid], seenS[sid] = true, true
	}
}

// TestSpanTraceIdentity pins the lineage rules: Begin mints a trace, Child
// inherits it with an in-process parent link, BeginRemote adopts the
// propagated trace with a remote parent link.
func TestSpanTraceIdentity(t *testing.T) {
	tr := NewTracer(16)
	root := tr.Begin("root", "test")
	child := root.Child("child", "test")
	child.End()
	root.End()

	remoteCtx := root.Context()
	if !remoteCtx.Valid() {
		t.Fatal("live span's context is invalid")
	}
	far := tr.BeginRemote("far", "test", remoteCtx)
	far.End()
	fresh := tr.BeginRemote("fresh", "test", TraceContext{}) // invalid parent -> new trace
	fresh.End()

	spans := tr.Spans()
	byName := map[string]SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	r, c, f, fr := byName["root"], byName["child"], byName["far"], byName["fresh"]
	if r.TraceID.IsZero() || r.SpanID.IsZero() {
		t.Fatal("root span has no trace identity")
	}
	if !r.ParentSpan.IsZero() || r.Remote {
		t.Fatalf("root span has a parent link: %+v", r)
	}
	if c.TraceID != r.TraceID || c.ParentSpan != r.SpanID || c.Remote {
		t.Fatalf("child lineage wrong: %+v vs root %+v", c, r)
	}
	if f.TraceID != r.TraceID || f.ParentSpan != r.SpanID || !f.Remote {
		t.Fatalf("remote lineage wrong: %+v vs root %+v", f, r)
	}
	if fr.TraceID == r.TraceID || fr.Remote {
		t.Fatalf("invalid remote parent should mint a fresh trace: %+v", fr)
	}

	// TraceSpans filters by trace.
	got := tr.TraceSpans(r.TraceID)
	if len(got) != 3 {
		t.Fatalf("TraceSpans returned %d spans, want 3", len(got))
	}
	if n := len(tr.TraceSpans(fr.TraceID)); n != 1 {
		t.Fatalf("fresh trace has %d spans, want 1", n)
	}
	if tr.TraceSpans(TraceID{}) != nil {
		t.Fatal("zero trace ID returned spans")
	}
}

func TestSpanRecordJSONRoundTrip(t *testing.T) {
	rec := SpanRecord{
		Name: "op", Cat: "test", ID: 7, Parent: 3, Root: 1,
		Start:   time.Date(2026, 8, 8, 12, 0, 0, 123456789, time.UTC),
		Dur:     1500 * time.Microsecond,
		Attrs:   map[string]string{"shard": "shard-1"},
		TraceID: NewTraceID(), SpanID: NewSpanID(), ParentSpan: NewSpanID(),
		Remote: true,
	}
	data, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), rec.TraceID.String()) {
		t.Fatalf("JSON %s does not carry the hex trace ID", data)
	}
	var got SpanRecord
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if !got.Start.Equal(rec.Start) {
		t.Fatalf("start changed: %v != %v", got.Start, rec.Start)
	}
	got.Start = rec.Start // location normalization; equality checked above
	if got.Name != rec.Name || got.Dur != rec.Dur || got.TraceID != rec.TraceID ||
		got.SpanID != rec.SpanID || got.ParentSpan != rec.ParentSpan ||
		got.Remote != rec.Remote || got.Attrs["shard"] != "shard-1" {
		t.Fatalf("round trip changed the record:\n got %+v\nwant %+v", got, rec)
	}
}

// TestTracerDroppedMetered overflows the bounded buffer and asserts the
// loss is published through the registry counter, not just the private
// count — the "silent span loss" fix.
func TestTracerDroppedMetered(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(4)
	tr.MeterDropped(reg.Counter("trace.dropped"))
	for i := 0; i < 10; i++ {
		tr.Begin("op", "test").End()
	}
	if got := tr.Len(); got != 4 {
		t.Fatalf("retained %d spans, want the capacity 4", got)
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("Dropped() = %d, want 6", got)
	}
	if got := reg.Snapshot().Get("trace.dropped"); got != 6 {
		t.Fatalf("trace.dropped counter = %d, want 6", got)
	}
	// Reset clears the private count; the registry counter is cumulative
	// (counters never go backward on a live /metrics page).
	tr.Reset()
	tr.Begin("op", "test").End()
	if got := reg.Snapshot().Get("trace.dropped"); got != 6 {
		t.Fatalf("trace.dropped moved to %d on a non-dropping End", got)
	}
	// Nil tracer: metering is a no-op, not a panic.
	var nilT *Tracer
	nilT.MeterDropped(reg.Counter("trace.dropped"))
}
