// Package pbuffer models the Parameter Buffer: the in-memory data structure
// the Tiling Engine builds (Polygon List Builder) and consumes (Tile
// Fetcher). It has two sections — PB-Lists (per-tile lists of Primitive
// MetaData words) and PB-Attributes (the 48-byte, block-aligned vertex
// attributes of each primitive) — and two alternative PB-Lists layouts: the
// baseline contiguous layout (Fig. 3) and TCOR's interleaved layout
// (Fig. 6).
package pbuffer

import (
	"fmt"

	"tcor/internal/geom"
)

// Hardware encoding constants (Figs. 3, 6).
const (
	// PMDBytes is the size of one Primitive MetaData word.
	PMDBytes = 4
	// PMDsPerBlock is how many PMDs fit in one 64-byte memory block.
	PMDsPerBlock = 16
	// MaxPrimsPerTile is the baseline allotment of primitives per tile list.
	MaxPrimsPerTile = 1024
	// BlocksPerTileBaseline is the per-tile list size in blocks in the
	// baseline layout (1024 PMDs / 16 PMDs per block).
	BlocksPerTileBaseline = MaxPrimsPerTile / PMDsPerBlock

	// Baseline PMD fields: 26-bit primitive ID + 4-bit attribute count.
	baseIDBits    = 26
	attrBits      = 4
	maxBaselineID = 1<<baseIDBits - 1

	// TCOR PMD fields: 16-bit primitive ID + 4-bit count + 12-bit OPT
	// Number.
	tcorIDBits = 16
	optBits    = 12
	maxTCORID  = 1<<tcorIDBits - 1
	// MaxOPTNumber is the largest encodable OPT Number; it doubles as the
	// "never used again" sentinel (geom.InvalidTile).
	MaxOPTNumber = 1<<optBits - 1
)

// PMD is a decoded Primitive MetaData word. In the baseline layout OPTNum is
// unused; in the TCOR layout the primitive ID field shrinks to 16 bits to
// make room for the 12-bit OPT Number (Fig. 6).
type PMD struct {
	PrimID   uint32
	NumAttrs uint8
	OPTNum   uint16
}

// EncodeBaseline packs the PMD in the baseline format of Fig. 3.
func (p PMD) EncodeBaseline() (uint32, error) {
	if p.PrimID > maxBaselineID {
		return 0, fmt.Errorf("pbuffer: primitive ID %d exceeds %d bits", p.PrimID, baseIDBits)
	}
	if p.NumAttrs == 0 || p.NumAttrs > geom.MaxAttributes {
		return 0, fmt.Errorf("pbuffer: attribute count %d out of range", p.NumAttrs)
	}
	return p.PrimID<<attrBits | uint32(p.NumAttrs), nil
}

// DecodeBaseline unpacks a baseline-format PMD word.
func DecodeBaseline(w uint32) PMD {
	return PMD{
		PrimID:   w >> attrBits & maxBaselineID,
		NumAttrs: uint8(w & (1<<attrBits - 1)),
	}
}

// EncodeTCOR packs the PMD in the TCOR format of Fig. 6
// (16-bit ID | 4-bit count | 12-bit OPT Number).
func (p PMD) EncodeTCOR() (uint32, error) {
	if p.PrimID > maxTCORID {
		return 0, fmt.Errorf("pbuffer: primitive ID %d exceeds %d bits", p.PrimID, tcorIDBits)
	}
	if p.NumAttrs == 0 || p.NumAttrs > geom.MaxAttributes {
		return 0, fmt.Errorf("pbuffer: attribute count %d out of range", p.NumAttrs)
	}
	if p.OPTNum > MaxOPTNumber {
		return 0, fmt.Errorf("pbuffer: OPT number %d exceeds %d bits", p.OPTNum, optBits)
	}
	return p.PrimID<<(attrBits+optBits) |
		uint32(p.NumAttrs)<<optBits |
		uint32(p.OPTNum), nil
}

// DecodeTCOR unpacks a TCOR-format PMD word.
func DecodeTCOR(w uint32) PMD {
	return PMD{
		PrimID:   w >> (attrBits + optBits) & maxTCORID,
		NumAttrs: uint8(w >> optBits & (1<<attrBits - 1)),
		OPTNum:   uint16(w & MaxOPTNumber),
	}
}
