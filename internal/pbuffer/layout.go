package pbuffer

import (
	"fmt"

	"tcor/internal/geom"
	"tcor/internal/memmap"
)

// ListLayout maps a (tile, list slot) pair to the byte address of the PMD in
// the PB-Lists section.
type ListLayout interface {
	// Name identifies the layout in reports.
	Name() string
	// PMDAddr returns the byte address of the slot-th PMD of tile t's list.
	PMDAddr(t geom.TileID, slot int) uint64
	// BlockOf returns the block index holding the slot-th PMD of tile t.
	BlockOf(t geom.TileID, slot int) uint64
	// TileOfBlock inverts the mapping at block granularity: which tile's
	// list does this PB-Lists block belong to? (The L2 dead-line logic
	// derives the owning tile from the block address, §III-D1.)
	TileOfBlock(block uint64) (geom.TileID, bool)
}

// BaselineListLayout is the contiguous layout of Fig. 3: each tile owns
// BlocksPerTileBaseline consecutive blocks starting at
// Base + tile*BlocksPerTileBaseline*64. Consecutive tiles are separated by a
// large power of two, which is exactly what causes the conflict-miss
// pathology of §III-B.
type BaselineListLayout struct {
	Base     uint64
	NumTiles int
}

// NewBaselineListLayout returns the baseline layout rooted at the standard
// PB-Lists base address.
func NewBaselineListLayout(numTiles int) BaselineListLayout {
	return BaselineListLayout{Base: memmap.PBListsBase, NumTiles: numTiles}
}

// Name implements ListLayout.
func (BaselineListLayout) Name() string { return "baseline" }

// PMDAddr implements ListLayout.
func (l BaselineListLayout) PMDAddr(t geom.TileID, slot int) uint64 {
	return l.Base +
		uint64(t)*BlocksPerTileBaseline*memmap.BlockBytes +
		uint64(slot)*PMDBytes
}

// BlockOf implements ListLayout.
func (l BaselineListLayout) BlockOf(t geom.TileID, slot int) uint64 {
	return memmap.Block(l.PMDAddr(t, slot))
}

// TileOfBlock implements ListLayout.
func (l BaselineListLayout) TileOfBlock(block uint64) (geom.TileID, bool) {
	addr := memmap.BlockAddr(block)
	if addr < l.Base {
		return 0, false
	}
	t := (addr - l.Base) / (BlocksPerTileBaseline * memmap.BlockBytes)
	if t >= uint64(l.NumTiles) {
		return 0, false
	}
	return geom.TileID(t), true
}

// InterleavedListLayout is TCOR's layout of Fig. 6: the lists are stored in
// sections; section s holds the s-th block of every tile's list, one block
// per tile, so consecutive tiles' data sits in consecutive blocks.
type InterleavedListLayout struct {
	Base     uint64
	NumTiles int
}

// NewInterleavedListLayout returns the interleaved layout rooted at the
// standard PB-Lists base address.
func NewInterleavedListLayout(numTiles int) InterleavedListLayout {
	return InterleavedListLayout{Base: memmap.PBListsBase, NumTiles: numTiles}
}

// Name implements ListLayout.
func (InterleavedListLayout) Name() string { return "interleaved" }

// PMDAddr implements ListLayout.
func (l InterleavedListLayout) PMDAddr(t geom.TileID, slot int) uint64 {
	section := uint64(slot / PMDsPerBlock)
	within := uint64(slot % PMDsPerBlock)
	block := section*uint64(l.NumTiles) + uint64(t)
	return l.Base + block*memmap.BlockBytes + within*PMDBytes
}

// BlockOf implements ListLayout.
func (l InterleavedListLayout) BlockOf(t geom.TileID, slot int) uint64 {
	return memmap.Block(l.PMDAddr(t, slot))
}

// TileOfBlock implements ListLayout. In the interleaved layout the tile ID
// is simply the block offset modulo the number of tiles (the paper's
// "extract the least significant bits" observation generalized to non
// power-of-two tile counts).
func (l InterleavedListLayout) TileOfBlock(block uint64) (geom.TileID, bool) {
	addr := memmap.BlockAddr(block)
	if addr < l.Base {
		return 0, false
	}
	off := (addr - l.Base) / memmap.BlockBytes
	if off >= uint64(l.NumTiles)*BlocksPerTileBaseline {
		return 0, false
	}
	return geom.TileID(off % uint64(l.NumTiles)), true
}

// AttrLayout maps attributes into the PB-Attributes section (Fig. 4). Each
// attribute is 48 bytes, block-aligned, so it occupies one 64-byte block.
// A primitive's attributes are consecutive; the index of its first
// attribute (its "attribute base") doubles as the primitive's identity in
// the address space — the paper uses the address of the first attribute as
// the Primitive ID.
type AttrLayout struct {
	Base uint64
}

// NewAttrLayout returns the attribute layout rooted at the standard
// PB-Attributes base address.
func NewAttrLayout() AttrLayout {
	return AttrLayout{Base: memmap.PBAttributesBase}
}

// AttrAddr returns the byte address of attribute i of a primitive whose
// first attribute has global index attrBase.
func (l AttrLayout) AttrAddr(attrBase uint32, i int) uint64 {
	return l.Base + (uint64(attrBase)+uint64(i))*memmap.BlockBytes
}

// AttrBlock returns the block index of attribute i of the primitive with
// the given attribute base.
func (l AttrLayout) AttrBlock(attrBase uint32, i int) uint64 {
	return memmap.Block(l.AttrAddr(attrBase, i))
}

// AttrIndexOfBlock inverts AttrBlock: the global attribute index stored in
// a PB-Attributes block.
func (l AttrLayout) AttrIndexOfBlock(block uint64) (uint32, error) {
	addr := memmap.BlockAddr(block)
	if addr < l.Base {
		return 0, fmt.Errorf("pbuffer: block %#x below PB-Attributes base", block)
	}
	return uint32((addr - l.Base) / memmap.BlockBytes), nil
}
