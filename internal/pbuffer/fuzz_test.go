package pbuffer

import (
	"testing"

	"tcor/internal/geom"
)

func FuzzPMDTCORRoundTrip(f *testing.F) {
	f.Add(uint32(0), uint8(1), uint16(0))
	f.Add(uint32(65535), uint8(15), uint16(4095))
	f.Add(uint32(1234), uint8(7), uint16(2047))
	f.Fuzz(func(t *testing.T, id uint32, attrs uint8, opt uint16) {
		p := PMD{
			PrimID:   id % (1 << 16),
			NumAttrs: attrs%15 + 1,
			OPTNum:   opt % (1 << 12),
		}
		w, err := p.EncodeTCOR()
		if err != nil {
			t.Fatalf("encode of in-range PMD failed: %v", err)
		}
		if got := DecodeTCOR(w); got != p {
			t.Fatalf("round trip: %+v -> %#x -> %+v", p, w, got)
		}
	})
}

func FuzzLayoutsInvertible(f *testing.F) {
	f.Add(uint16(0), uint16(0))
	f.Add(uint16(1487), uint16(1023))
	f.Add(uint16(700), uint16(17))
	const numTiles = 1488
	base := NewBaselineListLayout(numTiles)
	inter := NewInterleavedListLayout(numTiles)
	f.Fuzz(func(t *testing.T, tileRaw, slotRaw uint16) {
		tile := geom.TileID(tileRaw % numTiles)
		slot := int(slotRaw % MaxPrimsPerTile)
		for _, l := range []ListLayout{base, inter} {
			got, ok := l.TileOfBlock(l.BlockOf(tile, slot))
			if !ok || got != tile {
				t.Fatalf("%s: TileOfBlock(BlockOf(%d, %d)) = %d, %v",
					l.Name(), tile, slot, got, ok)
			}
			// PMD addresses within a block stay within the block.
			addr := l.PMDAddr(tile, slot)
			if addr/64 != l.BlockOf(tile, slot) {
				t.Fatalf("%s: PMD address %#x outside its block", l.Name(), addr)
			}
		}
	})
}
