package pbuffer

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tcor/internal/geom"
	"tcor/internal/memmap"
)

func TestPMDBaselineRoundTrip(t *testing.T) {
	p := PMD{PrimID: 123456, NumAttrs: 7}
	w, err := p.EncodeBaseline()
	if err != nil {
		t.Fatal(err)
	}
	if got := DecodeBaseline(w); got != p {
		t.Errorf("round trip = %+v, want %+v", got, p)
	}
}

func TestPMDTCORRoundTrip(t *testing.T) {
	p := PMD{PrimID: 65535, NumAttrs: 15, OPTNum: 4095}
	w, err := p.EncodeTCOR()
	if err != nil {
		t.Fatal(err)
	}
	if got := DecodeTCOR(w); got != p {
		t.Errorf("round trip = %+v, want %+v", got, p)
	}
}

func TestPMDEncodeErrors(t *testing.T) {
	if _, err := (PMD{PrimID: 1 << 26, NumAttrs: 1}).EncodeBaseline(); err == nil {
		t.Error("baseline: oversized ID should fail")
	}
	if _, err := (PMD{PrimID: 1, NumAttrs: 0}).EncodeBaseline(); err == nil {
		t.Error("baseline: zero attrs should fail")
	}
	if _, err := (PMD{PrimID: 1, NumAttrs: 16}).EncodeBaseline(); err == nil {
		t.Error("baseline: 16 attrs should fail")
	}
	if _, err := (PMD{PrimID: 1 << 16, NumAttrs: 1}).EncodeTCOR(); err == nil {
		t.Error("tcor: oversized ID should fail")
	}
	if _, err := (PMD{PrimID: 1, NumAttrs: 1, OPTNum: 1 << 12}).EncodeTCOR(); err == nil {
		t.Error("tcor: oversized OPT number should fail")
	}
}

func TestPMDRoundTripProperty(t *testing.T) {
	f := func(id uint32, attrs uint8, opt uint16) bool {
		p := PMD{
			PrimID:   id % (1 << 16),
			NumAttrs: attrs%15 + 1,
			OPTNum:   opt % (1 << 12),
		}
		wt, err := p.EncodeTCOR()
		if err != nil || DecodeTCOR(wt) != p {
			return false
		}
		pb := PMD{PrimID: id % (1 << 26), NumAttrs: p.NumAttrs}
		wb, err := pb.EncodeBaseline()
		if err != nil || DecodeBaseline(wb) != pb {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func TestBaselineListLayout(t *testing.T) {
	l := NewBaselineListLayout(1488)
	if l.Name() != "baseline" {
		t.Error("name")
	}
	// Tile 0 slot 0 at base; slot 16 is one block later.
	if l.PMDAddr(0, 0) != memmap.PBListsBase {
		t.Errorf("tile0 slot0 = %#x", l.PMDAddr(0, 0))
	}
	if l.BlockOf(0, 16) != l.BlockOf(0, 0)+1 {
		t.Error("slot 16 should be in the next block")
	}
	// Consecutive tiles are 64 blocks apart — the conflict pathology.
	if l.BlockOf(1, 0)-l.BlockOf(0, 0) != BlocksPerTileBaseline {
		t.Errorf("tile stride = %d blocks", l.BlockOf(1, 0)-l.BlockOf(0, 0))
	}
	// TileOfBlock inverts BlockOf for every slot in the tile.
	for _, tile := range []geom.TileID{0, 1, 700, 1487} {
		for _, slot := range []int{0, 15, 16, 1023} {
			got, ok := l.TileOfBlock(l.BlockOf(tile, slot))
			if !ok || got != tile {
				t.Fatalf("TileOfBlock(BlockOf(%d,%d)) = %d,%v", tile, slot, got, ok)
			}
		}
	}
	if _, ok := l.TileOfBlock(memmap.Block(memmap.PBListsBase) - 1); ok {
		t.Error("block below base should not classify")
	}
	if _, ok := l.TileOfBlock(l.BlockOf(1487, 1023) + 1); ok {
		t.Error("block past last tile should not classify")
	}
}

func TestInterleavedListLayout(t *testing.T) {
	numTiles := 1488
	l := NewInterleavedListLayout(numTiles)
	if l.Name() != "interleaved" {
		t.Error("name")
	}
	// Consecutive tiles' first blocks are adjacent (the whole point).
	if l.BlockOf(1, 0)-l.BlockOf(0, 0) != 1 {
		t.Errorf("tile stride = %d blocks, want 1", l.BlockOf(1, 0)-l.BlockOf(0, 0))
	}
	// Slot 16 of tile t lives one section later: numTiles blocks away.
	if l.BlockOf(5, 16)-l.BlockOf(5, 0) != uint64(numTiles) {
		t.Errorf("section stride = %d", l.BlockOf(5, 16)-l.BlockOf(5, 0))
	}
	// PMDs within a block are consecutive words.
	if l.PMDAddr(3, 1)-l.PMDAddr(3, 0) != PMDBytes {
		t.Error("PMD stride within block")
	}
	for _, tile := range []geom.TileID{0, 1, 700, 1487} {
		for _, slot := range []int{0, 15, 16, 500, 1023} {
			got, ok := l.TileOfBlock(l.BlockOf(tile, slot))
			if !ok || got != tile {
				t.Fatalf("TileOfBlock(BlockOf(%d,%d)) = %d,%v", tile, slot, got, ok)
			}
		}
	}
}

// Property: the two layouts are both injective over (tile, block-slot)
// pairs — no two distinct PMD slots of distinct tiles share a byte address.
func TestLayoutsInjectiveProperty(t *testing.T) {
	numTiles := 64
	layouts := []ListLayout{
		NewBaselineListLayout(numTiles),
		NewInterleavedListLayout(numTiles),
	}
	for _, l := range layouts {
		seen := map[uint64]string{}
		for tile := 0; tile < numTiles; tile++ {
			for slot := 0; slot < 64; slot++ {
				a := l.PMDAddr(geom.TileID(tile), slot)
				if prev, dup := seen[a]; dup {
					t.Fatalf("%s: address %#x assigned twice (%s and tile %d slot %d)",
						l.Name(), a, prev, tile, slot)
				}
				seen[a] = l.Name()
			}
		}
	}
}

func TestAttrLayout(t *testing.T) {
	l := NewAttrLayout()
	if l.AttrAddr(0, 0) != memmap.PBAttributesBase {
		t.Errorf("first attr at %#x", l.AttrAddr(0, 0))
	}
	// One block per attribute.
	if l.AttrBlock(10, 2)-l.AttrBlock(10, 0) != 2 {
		t.Error("attributes must be one block each")
	}
	idx, err := l.AttrIndexOfBlock(l.AttrBlock(7, 3))
	if err != nil || idx != 10 {
		t.Errorf("AttrIndexOfBlock = %d, %v; want 10", idx, err)
	}
	if _, err := l.AttrIndexOfBlock(0); err == nil {
		t.Error("block below base should error")
	}
	// Region classification holds.
	if memmap.RegionOf(l.AttrAddr(100, 0)) != memmap.RegionPBAttributes {
		t.Error("attr addresses must classify as PB-Attributes")
	}
}
