package workload

import (
	"math"
	"os"
	"testing"

	"tcor/internal/geom"
)

func TestSuiteMatchesTableII(t *testing.T) {
	suite := Suite()
	if len(suite) != 10 {
		t.Fatalf("suite has %d benchmarks, want 10", len(suite))
	}
	for _, s := range suite {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Alias, err)
		}
	}
	// Spot-check published values.
	ccs, err := ByAlias("CCS")
	if err != nil {
		t.Fatal(err)
	}
	if ccs.PBFootprintMiB != 0.17 || ccs.AvgPrimReuse != 5.9 || ccs.ThreeD {
		t.Errorf("CCS spec mismatch: %+v", ccs)
	}
	dds, _ := ByAlias("DDS")
	if dds.PBFootprintMiB != 1.81 || dds.AvgPrimReuse != 1.4 {
		t.Errorf("DDS spec mismatch: %+v", dds)
	}
	if _, err := ByAlias("nope"); err == nil {
		t.Error("expected error for unknown alias")
	}
	if len(Aliases()) != 10 || Aliases()[0] != "CCS" {
		t.Errorf("Aliases = %v", Aliases())
	}
}

func TestSpecValidate(t *testing.T) {
	good := Suite()[0]
	cases := []func(*Spec){
		func(s *Spec) { s.Alias = "" },
		func(s *Spec) { s.PBFootprintMiB = 0 },
		func(s *Spec) { s.AvgPrimReuse = 0.5 },
		func(s *Spec) { s.MeanAttrs = 0 },
		func(s *Spec) { s.MeanAttrs = 20 },
		func(s *Spec) { s.Frames = 0 },
	}
	for i, mutate := range cases {
		s := good
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestGenerateCalibratesToTargets(t *testing.T) {
	screen := geom.DefaultScreen()
	for _, spec := range Suite() {
		spec := spec
		spec.Frames = 1
		t.Run(spec.Alias, func(t *testing.T) {
			sc, err := Generate(spec, screen)
			if err != nil {
				t.Fatal(err)
			}
			st := sc.Stats()
			targetBytes := spec.PBFootprintMiB * 1024 * 1024
			if r := float64(st.PBFootprint) / targetBytes; math.Abs(r-1) > 0.10 {
				t.Errorf("PB footprint %d bytes is %.1f%% of target %.0f",
					st.PBFootprint, 100*r, targetBytes)
			}
			if r := st.AvgPrimReuse / spec.AvgPrimReuse; math.Abs(r-1) > 0.12 {
				t.Errorf("avg reuse %.2f is %.1f%% of target %.2f",
					st.AvgPrimReuse, 100*r, spec.AvgPrimReuse)
			}
			if math.Abs(st.AvgAttrs-spec.MeanAttrs) > 0.3 {
				t.Errorf("avg attrs %.2f, want ~%.1f", st.AvgAttrs, spec.MeanAttrs)
			}
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := Suite()[1]
	spec.Frames = 2
	screen := geom.DefaultScreen()
	a, err := Generate(spec, screen)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Generate(spec, screen)
	if a.NumFrames() != b.NumFrames() {
		t.Fatal("frame count differs")
	}
	for f := 0; f < a.NumFrames(); f++ {
		fa, fb := a.Frame(f), b.Frame(f)
		if len(fa.Prims) != len(fb.Prims) {
			t.Fatalf("frame %d prim count differs", f)
		}
		for i := range fa.Prims {
			if fa.Prims[i].Pos != fb.Prims[i].Pos {
				t.Fatalf("frame %d prim %d differs", f, i)
			}
		}
	}
}

func TestGenerateFramesDifferButResemble(t *testing.T) {
	spec := Suite()[0]
	spec.Frames = 2
	screen := geom.DefaultScreen()
	sc, err := Generate(spec, screen)
	if err != nil {
		t.Fatal(err)
	}
	f0, f1 := sc.Frame(0), sc.Frame(1)
	if len(f0.Prims) != len(f1.Prims) {
		t.Errorf("frames have different prim counts: %d vs %d", len(f0.Prims), len(f1.Prims))
	}
	same := 0
	for i := range f0.Prims {
		if f0.Prims[i].Pos == f1.Prims[i].Pos {
			same++
		}
	}
	if same == len(f0.Prims) {
		t.Error("animation produced identical frames")
	}
	// Frame 1 statistics stay in the calibrated ballpark.
	st1 := Measure(screen, f1)
	if r := st1.AvgPrimReuse / spec.AvgPrimReuse; r < 0.7 || r > 1.4 {
		t.Errorf("frame 1 reuse %.2f drifted too far from target %.2f",
			st1.AvgPrimReuse, spec.AvgPrimReuse)
	}
}

func TestGenerateRejectsBadInput(t *testing.T) {
	if _, err := Generate(Spec{}, geom.DefaultScreen()); err == nil {
		t.Error("expected error for empty spec")
	}
	spec := Suite()[0]
	if _, err := Generate(spec, geom.Screen{}); err == nil {
		t.Error("expected error for invalid screen")
	}
}

func TestPrimitivesAreValidAndOnScreenish(t *testing.T) {
	spec := Suite()[6] // DDS, the biggest
	spec.Frames = 1
	screen := geom.DefaultScreen()
	sc, err := Generate(spec, screen)
	if err != nil {
		t.Fatal(err)
	}
	var buf []geom.TileID
	for i := range sc.Frame(0).Prims {
		p := &sc.Frame(0).Prims[i]
		if err := p.Validate(); err != nil {
			t.Fatalf("prim %d: %v", i, err)
		}
		if p.ID != uint32(i) {
			t.Fatalf("prim %d has ID %d; IDs must be program order", i, p.ID)
		}
		buf = screen.OverlappedTiles(p, buf[:0])
		if len(buf) == 0 {
			t.Fatalf("prim %d overlaps no tiles", i)
		}
	}
}

func TestParseSpecJSON(t *testing.T) {
	data := []byte(`{
		"name": "My Game", "alias": "MyG", "genre": "Racing", "threeD": true,
		"pbFootprintMiB": 0.9, "avgPrimReuse": 2.2,
		"textureMiB": 4, "shaderInstrPerPixel": 14, "frames": 2
	}`)
	s, err := ParseSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if s.Alias != "MyG" || s.PBFootprintMiB != 0.9 || s.MeanAttrs != 1.4 || s.Frames != 2 {
		t.Errorf("spec = %+v", s)
	}
	// Unknown fields fail loudly.
	if _, err := ParseSpec([]byte(`{"alias":"X","pbFootprint":1}`)); err == nil {
		t.Error("unknown field must fail")
	}
	// Invalid values fail validation.
	if _, err := ParseSpec([]byte(`{"alias":"X","pbFootprintMiB":0.1,"avgPrimReuse":0.2}`)); err == nil {
		t.Error("reuse < 1 must fail")
	}
	// Alias derived from the name when absent.
	s, err = ParseSpec([]byte(`{"name":"Roadster","pbFootprintMiB":0.2,"avgPrimReuse":2}`))
	if err != nil || s.Alias != "Roa" {
		t.Errorf("derived alias = %q, err %v", s.Alias, err)
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	orig := Suite()[3]
	data, err := MarshalSpec(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if back != orig {
		t.Errorf("round trip:\n%+v\n%+v", back, orig)
	}
}

func TestLoadSpecFile(t *testing.T) {
	path := t.TempDir() + "/spec.json"
	data, _ := MarshalSpec(Suite()[0])
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := LoadSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Alias != "CCS" {
		t.Errorf("alias = %q", s.Alias)
	}
	if _, err := LoadSpec(path + ".missing"); err == nil {
		t.Error("missing file must fail")
	}
}
