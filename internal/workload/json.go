package workload

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// ParseSpec decodes a benchmark spec from JSON. Unknown fields are
// rejected so typos in hand-written profiles fail loudly; missing fields
// fall back to sensible defaults (3 attributes would overshoot Table II —
// see spec.go — so the default is the suite's 1.4; one frame; seed 1).
//
// Example profile:
//
//	{
//	  "name": "My Game", "alias": "MyG", "genre": "Racing", "threeD": true,
//	  "pbFootprintMiB": 0.9, "avgPrimReuse": 2.2,
//	  "textureMiB": 4, "shaderInstrPerPixel": 14, "frames": 2
//	}
func ParseSpec(data []byte) (Spec, error) {
	var raw struct {
		Name                string   `json:"name"`
		Alias               string   `json:"alias"`
		Installs            int      `json:"installsMillions"`
		Genre               string   `json:"genre"`
		ThreeD              bool     `json:"threeD"`
		PBFootprintMiB      float64  `json:"pbFootprintMiB"`
		AvgPrimReuse        float64  `json:"avgPrimReuse"`
		TextureMiB          float64  `json:"textureMiB"`
		ShaderInstrPerPixel int      `json:"shaderInstrPerPixel"`
		MeanAttrs           *float64 `json:"meanAttrs"`
		Frames              int      `json:"frames"`
		Seed                *int64   `json:"seed"`
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&raw); err != nil {
		return Spec{}, fmt.Errorf("workload: parsing spec: %w", err)
	}
	s := Spec{
		Name: raw.Name, Alias: raw.Alias, Installs: raw.Installs,
		Genre: raw.Genre, ThreeD: raw.ThreeD,
		PBFootprintMiB: raw.PBFootprintMiB, AvgPrimReuse: raw.AvgPrimReuse,
		TextureMiB: raw.TextureMiB, ShaderInstrPerPixel: raw.ShaderInstrPerPixel,
		MeanAttrs: 1.4, Frames: raw.Frames, Seed: 1,
	}
	if raw.MeanAttrs != nil {
		s.MeanAttrs = *raw.MeanAttrs
	}
	if raw.Seed != nil {
		s.Seed = *raw.Seed
	}
	if s.Frames == 0 {
		s.Frames = 1
	}
	if s.Alias == "" && s.Name != "" {
		if len(s.Name) >= 3 {
			s.Alias = s.Name[:3]
		} else {
			s.Alias = s.Name
		}
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// LoadSpec reads a spec from a JSON file.
func LoadSpec(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, err
	}
	return ParseSpec(data)
}

// MarshalSpec serializes a spec to JSON (the inverse of ParseSpec, for
// exporting the built-in suite as editable profiles).
func MarshalSpec(s Spec) ([]byte, error) {
	out := map[string]any{
		"name":                s.Name,
		"alias":               s.Alias,
		"installsMillions":    s.Installs,
		"genre":               s.Genre,
		"threeD":              s.ThreeD,
		"pbFootprintMiB":      s.PBFootprintMiB,
		"avgPrimReuse":        s.AvgPrimReuse,
		"textureMiB":          s.TextureMiB,
		"shaderInstrPerPixel": s.ShaderInstrPerPixel,
		"meanAttrs":           s.MeanAttrs,
		"frames":              s.Frames,
		"seed":                s.Seed,
	}
	return json.MarshalIndent(out, "", "  ")
}
