package workload

import (
	"testing"
)

// FuzzLoadSpec feeds arbitrary bytes through the JSON profile parser (the
// same path LoadSpec takes after reading a file) and checks the parser's
// contract: it never panics, every spec it accepts passes Validate, and
// accepted specs survive a MarshalSpec/ParseSpec round trip unchanged.
func FuzzLoadSpec(f *testing.F) {
	// The documented example profile, a minimal one, and the kinds of
	// malformed input hand-edited profiles produce.
	f.Add([]byte(`{"name":"My Game","alias":"MyG","genre":"Racing","threeD":true,
	  "pbFootprintMiB":0.9,"avgPrimReuse":2.2,"textureMiB":4,
	  "shaderInstrPerPixel":14,"frames":2}`))
	f.Add([]byte(`{"name":"Tiny","pbFootprintMiB":0.1,"avgPrimReuse":1.5}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"unknownField":1}`))
	f.Add([]byte(`{"pbFootprintMiB":-3}`))
	f.Add([]byte(`{"frames":999999999999999999999}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`[]`))
	for _, s := range Suite() {
		if data, err := MarshalSpec(s); err == nil {
			f.Add(data)
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := ParseSpec(data)
		if err != nil {
			return
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("ParseSpec accepted a spec Validate rejects: %v\ninput: %q", err, data)
		}
		out, err := MarshalSpec(spec)
		if err != nil {
			t.Fatalf("MarshalSpec failed on an accepted spec %+v: %v", spec, err)
		}
		back, err := ParseSpec(out)
		if err != nil {
			t.Fatalf("round trip rejected MarshalSpec output: %v\njson: %s", err, out)
		}
		if back != spec {
			t.Fatalf("round trip changed the spec:\n before %+v\n after  %+v", spec, back)
		}
	})
}
