// Package workload synthesizes the paper's benchmark suite.
//
// The paper evaluates TCOR on GPU traces of ten commercial Android games
// (Table II). Those traces are proprietary, so this package generates
// synthetic scenes that are calibrated, per benchmark, to the published
// workload statistics that actually determine replacement-policy behaviour:
// the Parameter Buffer footprint, the average primitive re-use (tiles
// overlapped per primitive), 2D vs 3D structure (background layers), texture
// footprint and shader program length. Scene generation is deterministic:
// a given Spec always produces the same frames.
package workload

import "fmt"

// Spec describes one benchmark of the suite.
type Spec struct {
	Name     string // full Google Play name
	Alias    string // the paper's 3-letter alias
	Installs int    // millions of installs (Table II)
	Genre    string
	ThreeD   bool // "Type" column: 3D vs 2D

	// PBFootprintMiB is the Parameter Buffer memory footprint target (Table
	// II, "Parameter Buffer Footprint").
	PBFootprintMiB float64
	// AvgPrimReuse is the average number of tiles overlapped per primitive
	// (Table II, "Avg Prim Re-use").
	AvgPrimReuse float64

	// TextureMiB is the texture working-set footprint. The paper quotes RoK
	// at ~6.8 MiB and SWa at ~0.4 MiB (§IV-B); the rest are plausible
	// interpolations by genre.
	TextureMiB float64
	// ShaderInstrPerPixel is the average fragment shader length. The paper
	// quotes CCS at 4 and DDS at 20 (§IV-B).
	ShaderInstrPerPixel int

	// MeanAttrs is the mean number of attributes per primitive (the paper
	// uses ~3 as the average, §III-C1).
	MeanAttrs float64

	// Frames is the number of animation frames to simulate.
	Frames int
	// Seed drives all randomness for this benchmark.
	Seed int64
}

// Validate reports whether the spec is self-consistent.
func (s Spec) Validate() error {
	if s.Alias == "" {
		return fmt.Errorf("workload: spec needs an alias")
	}
	if s.PBFootprintMiB <= 0 {
		return fmt.Errorf("workload %s: PB footprint must be positive", s.Alias)
	}
	if s.AvgPrimReuse < 1 {
		return fmt.Errorf("workload %s: average reuse %v must be >= 1 (every primitive overlaps at least one tile)", s.Alias, s.AvgPrimReuse)
	}
	if s.MeanAttrs < 1 || s.MeanAttrs > 15 {
		return fmt.Errorf("workload %s: mean attributes %v out of [1,15]", s.Alias, s.MeanAttrs)
	}
	if s.Frames <= 0 {
		return fmt.Errorf("workload %s: frames must be positive", s.Alias)
	}
	return nil
}

// Suite returns the ten benchmarks of Table II in paper order.
func Suite() []Spec {
	mk := func(name, alias string, installs int, genre string, threeD bool,
		pbMiB, reuse, texMiB float64, shader int, seed int64) Spec {
		return Spec{
			Name: name, Alias: alias, Installs: installs, Genre: genre,
			ThreeD: threeD, PBFootprintMiB: pbMiB, AvgPrimReuse: reuse,
			TextureMiB: texMiB, ShaderInstrPerPixel: shader,
			// §III-C1 quotes "around 3 attributes" as the average, but the
			// Table II columns are only mutually consistent at ~1.4: TRu
			// has 11 prims/tile over 1470 tiles at re-use 2.8, i.e. ~5800
			// primitives in a 0.55 MiB Parameter Buffer — ~98 bytes per
			// primitive, which is 1.37 block-aligned attributes plus its
			// PMDs (DDS gives 1.25 the same way). We follow Table II.
			MeanAttrs: 1.4, Frames: 2, Seed: seed,
		}
	}
	return []Spec{
		mk("Candy Crush Saga", "CCS", 1000, "Puzzle", false, 0.17, 5.9, 2.0, 4, 101),
		mk("Sonic Dash", "SoD", 100, "Arcade", true, 0.14, 6.9, 3.0, 8, 102),
		mk("Temple Run", "TRu", 500, "Arcade", true, 0.55, 2.8, 3.5, 10, 103),
		mk("Shoot Strike War Fire", "SWa", 10, "Shooter", true, 0.28, 3.7, 0.4, 12, 104),
		mk("City Racing 3D", "CRa", 50, "Racing", true, 0.86, 2.0, 4.0, 14, 105),
		mk("Rise of Kingdoms: Lost Crusade", "RoK", 10, "Strategy", false, 0.2, 3.6, 6.8, 6, 106),
		mk("Derby Destruction Simulator", "DDS", 10, "Racing", true, 1.81, 1.4, 5.0, 20, 107),
		mk("Sniper 3D", "Snp", 500, "Shooter", true, 0.71, 1.47, 4.5, 16, 108),
		mk("3D Maze 2: Diamonds & Ghosts", "Mze", 10, "Arcade", true, 1.22, 2.4, 2.5, 12, 109),
		mk("Gravitytetris", "GTr", 5, "Puzzle", true, 0.12, 6.9, 1.0, 5, 110),
	}
}

// ByAlias returns the suite spec with the given alias.
func ByAlias(alias string) (Spec, error) {
	for _, s := range Suite() {
		if s.Alias == alias {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown benchmark %q", alias)
}

// Aliases returns the benchmark aliases in paper order.
func Aliases() []string {
	suite := Suite()
	out := make([]string, len(suite))
	for i, s := range suite {
		out[i] = s.Alias
	}
	return out
}
