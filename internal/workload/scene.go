package workload

import (
	"fmt"
	"math"
	"math/rand"

	"tcor/internal/geom"
)

// Frame is one frame of binned-ready geometry: the primitives in program
// order, as they leave the Primitive Assembly stage.
type Frame struct {
	Prims []geom.Primitive
}

// Stats summarizes the realized (measured) characteristics of a generated
// frame, for comparison against the Table II targets.
type Stats struct {
	Primitives    int
	TotalOverlaps int     // sum over primitives of tiles overlapped
	AvgPrimReuse  float64 // TotalOverlaps / Primitives
	AvgPrimsTile  float64 // TotalOverlaps / tiles
	PBFootprint   int64   // bytes: attributes (block aligned) + PMDs
	AvgAttrs      float64
}

// Scene is a calibrated multi-frame workload for one benchmark.
type Scene struct {
	Spec   Spec
	Screen geom.Screen
	frames []Frame
	stats  Stats // stats of frame 0
}

// NumFrames returns the number of generated frames.
func (sc *Scene) NumFrames() int { return len(sc.frames) }

// Frame returns frame i.
func (sc *Scene) Frame(i int) *Frame { return &sc.frames[i] }

// Stats returns the realized statistics of the first frame.
func (sc *Scene) Stats() Stats { return sc.stats }

// NewSceneFromFrames wraps externally produced primitive streams (for
// example the output of the internal/geometry pipeline on a real 3D scene)
// as a workload Scene so they can drive the full-system simulator. The spec
// supplies the non-geometric parameters (texture footprint, shader length);
// its calibration targets are ignored. Primitive IDs must be in program
// order within each frame.
func NewSceneFromFrames(spec Spec, screen geom.Screen, frames []Frame) (*Scene, error) {
	if err := screen.Validate(); err != nil {
		return nil, err
	}
	if len(frames) == 0 {
		return nil, fmt.Errorf("workload: need at least one frame")
	}
	for f := range frames {
		for i := range frames[f].Prims {
			p := &frames[f].Prims[i]
			if err := p.Validate(); err != nil {
				return nil, fmt.Errorf("workload: frame %d: %w", f, err)
			}
			if p.ID != uint32(i) {
				return nil, fmt.Errorf("workload: frame %d prim %d has ID %d; program order required", f, i, p.ID)
			}
		}
	}
	spec.Frames = len(frames)
	return &Scene{
		Spec:   spec,
		Screen: screen,
		frames: frames,
		stats:  measure(screen, &frames[0]),
	}, nil
}

// Generate builds the calibrated scene for a spec on the given screen. The
// generation loop adjusts the primitive count and the size distribution so
// that the realized Parameter Buffer footprint and average primitive re-use
// match the Table II targets within a few percent.
func Generate(spec Spec, screen geom.Screen) (*Scene, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if err := screen.Validate(); err != nil {
		return nil, err
	}

	targetBytes := spec.PBFootprintMiB * 1024 * 1024
	// Initial estimates: per-primitive bytes = attrs*64 (block-aligned
	// attributes) + reuse*4 (one 4-byte PMD per overlapped tile list).
	perPrim := spec.MeanAttrs*64 + spec.AvgPrimReuse*4
	numPrims := int(targetBytes / perPrim)
	if numPrims < 8 {
		numPrims = 8
	}
	// Initial size scale: a triangle with legs L spans roughly
	// (L/T + 1)^2 * 0.6 tiles, so invert for the target reuse.
	tile := float64(screen.TileSize)
	sizeScale := tile * (math.Sqrt(spec.AvgPrimReuse/0.6) - 1)
	if sizeScale < 2 {
		sizeScale = 2
	}

	var frame Frame
	var st Stats
	for iter := 0; iter < 8; iter++ {
		frame = synthesizeFrame(spec, screen, numPrims, sizeScale, 0)
		st = measure(screen, &frame)
		reuseErr := st.AvgPrimReuse / spec.AvgPrimReuse
		footErr := float64(st.PBFootprint) / targetBytes
		if math.Abs(reuseErr-1) < 0.03 && math.Abs(footErr-1) < 0.03 {
			break
		}
		// Multiplicative updates. Reuse responds to size sub-linearly
		// (tiles ~ size^2 for big prims, but floor of 1 tile for small
		// ones), so damp the correction.
		adj := math.Pow(1/reuseErr, 0.7)
		sizeScale *= clampF(adj, 0.4, 2.5)
		if sizeScale < 1 {
			sizeScale = 1
		}
		numPrims = int(float64(numPrims) / footErr)
		if numPrims < 8 {
			numPrims = 8
		}
	}

	sc := &Scene{Spec: spec, Screen: screen, stats: st}
	sc.frames = make([]Frame, spec.Frames)
	sc.frames[0] = frame
	for f := 1; f < spec.Frames; f++ {
		sc.frames[f] = synthesizeFrame(spec, screen, numPrims, sizeScale, f)
	}
	return sc, nil
}

// synthesizeFrame generates the primitives of one frame. The layout mixes a
// handful of large "background" triangles (sky, ground planes — the 3D
// games' large-coverage geometry) with many smaller foreground triangles
// whose size follows a lognormal distribution. Frame index shifts object
// positions slightly (animation), so consecutive frames have similar but not
// identical binning.
func synthesizeFrame(spec Spec, screen geom.Screen, numPrims int, sizeScale float64, frameIdx int) Frame {
	rng := rand.New(rand.NewSource(spec.Seed*1_000_003 + int64(frameIdx)))
	w, h := float64(screen.Width), float64(screen.Height)
	prims := make([]geom.Primitive, 0, numPrims)

	// Background layer, drawn first (painter's order): a full-screen quad
	// (two triangles) at maximum depth — most games paint a backdrop or
	// skybox over the whole screen, which is what gives frames their ~full
	// screen coverage and overdraw of 1.5-3x. Very-low-reuse titles (DDS,
	// Snp: Table II re-use < 2) cannot contain a 1488-tile primitive in
	// their reuse budget; those games clear the backdrop instead of
	// drawing it (a free operation in a TBR GPU's on-chip Color Buffer).
	if spec.AvgPrimReuse >= 2 {
		fullscreen := [2][3]geom.Vec2{
			{{X: -1, Y: -1}, {X: float32(w) + 1, Y: -1}, {X: -1, Y: float32(h) + 1}},
			{{X: float32(w) + 1, Y: float32(h) + 1}, {X: float32(w) + 1, Y: -1}, {X: -1, Y: float32(h) + 1}},
		}
		for _, pos := range fullscreen {
			p := triangleAt(rng, w/2, h/2, 1, 1, spec, uint32(len(prims)))
			p.Pos = pos
			p.Depth = [3]float32{0.999, 0.999, 0.999} // behind everything
			prims = append(prims, p)
		}
	}
	// 3D scenes add a couple of large mid-ground planes (terrain).
	if spec.ThreeD && numPrims > 64 {
		for i := 0; i < 2+rng.Intn(2); i++ {
			cx, cy := w*(0.25+rng.Float64()/2), h*(0.25+rng.Float64()/2)
			span := 0.4 + rng.Float64()*0.5
			p := triangleAt(rng, cx, cy, span*w, span*h, spec, uint32(len(prims)))
			for v := range p.Depth {
				p.Depth[v] = 0.9 + rng.Float32()*0.05
			}
			prims = append(prims, p)
		}
	}

	// Foreground: primitives arrive mesh by mesh, the way applications
	// submit draw calls. Each mesh is a run of consecutive primitives
	// around a drifting anchor, so program order has the spatial locality
	// the Polygon List Builder exploits at memory-block granularity
	// (§III-C1: 16 PMDs share a block, and consecutive primitives of a
	// mesh bin into the same tiles).
	sigma := 0.8
	drift := float32(frameIdx) * 7 // animation between frames
	var buf []geom.TileID
	var meshLeft int
	var mx, my float64
	for len(prims) < numPrims {
		if meshLeft == 0 {
			meshLeft = 8 + rng.Intn(48)
			mx = rng.Float64() * w
			my = rng.Float64() * h
		}
		meshLeft--
		// The anchor walks a little per primitive (triangle strips).
		mx += rng.NormFloat64() * w / 64
		my += rng.NormFloat64() * h / 64
		cx := math.Mod(math.Abs(mx+float64(drift)), w)
		cy := math.Mod(math.Abs(my), h)
		size := sizeScale * math.Exp(rng.NormFloat64()*sigma-sigma*sigma/2)
		// Shape mixture. Real game geometry is not uniformly compact:
		// roads, walls and UI strips are long and thin (their tiles are
		// scattered across the traversal, stretching reuse distances),
		// and occasional large props cover many tiles. This mixture is
		// what gives the Parameter Buffer stream its LRU-hostile reuse
		// pattern; the calibration loop keeps the *mean* re-use at the
		// Table II target regardless.
		var p geom.Primitive
		switch roll := rng.Intn(10); {
		case roll < 3:
			// Elongated sliver at an arbitrary angle (roads, walls,
			// beams, skid marks). Diagonal slivers cross many Z-order
			// quadrants, so their tile visits are spread across the whole
			// traversal — the long-reuse-distance component of real
			// scenes that separates OPT from LRU.
			stretch := 8 + rng.Float64()*24
			p = sliverAt(rng, cx, cy, size*stretch, size*0.3, spec, uint32(len(prims)))
		case roll < 4: // large prop
			p = triangleAt(rng, cx, cy, size*2.5, size*2.5, spec, uint32(len(prims)))
		default:
			p = triangleAt(rng, cx, cy, size, size, spec, uint32(len(prims)))
		}
		if buf = screen.OverlappedTiles(&p, buf[:0]); len(buf) == 0 {
			continue // fully off-screen; the Tiling Engine would cull it
		}
		prims = append(prims, p)
	}
	return Frame{Prims: prims}
}

// sliverAt builds a long thin triangle of the given length and width,
// centered near (cx, cy) at a random angle.
func sliverAt(rng *rand.Rand, cx, cy, length, width float64, spec Spec, id uint32) geom.Primitive {
	theta := rng.Float64() * math.Pi
	dx, dy := math.Cos(theta), math.Sin(theta)
	// Perpendicular for the width.
	px, py := -dy, dx
	p := triangleAt(rng, cx, cy, 1, 1, spec, id) // depth + attrs; positions replaced
	p.Pos[0] = geom.Vec2{X: float32(cx - dx*length/2), Y: float32(cy - dy*length/2)}
	p.Pos[1] = geom.Vec2{X: float32(cx + dx*length/2), Y: float32(cy + dy*length/2)}
	p.Pos[2] = geom.Vec2{X: float32(cx + px*width), Y: float32(cy + py*width)}
	return p
}

// triangleAt builds one primitive centered near (cx, cy) with extents
// (sx, sy), random orientation, depth and attribute payload.
func triangleAt(rng *rand.Rand, cx, cy, sx, sy float64, spec Spec, id uint32) geom.Primitive {
	var p geom.Primitive
	p.ID = id
	for i := 0; i < 3; i++ {
		p.Pos[i] = geom.Vec2{
			X: float32(cx + (rng.Float64()-0.5)*sx),
			Y: float32(cy + (rng.Float64()-0.5)*sy),
		}
		p.Depth[i] = float32(rng.Float64())
	}
	// Attribute count: integer around MeanAttrs in [1, 15] so that the mean
	// over many primitives matches the spec.
	n := int(spec.MeanAttrs)
	frac := spec.MeanAttrs - float64(n)
	if rng.Float64() < frac {
		n++
	}
	// Mild variance: +/-1 with 25% probability each way.
	switch rng.Intn(4) {
	case 0:
		n++
	case 1:
		n--
	}
	if n < 1 {
		n = 1
	}
	if n > geom.MaxAttributes {
		n = geom.MaxAttributes
	}
	p.Attrs = make([]geom.Attribute, n)
	for a := range p.Attrs {
		for v := 0; v < 3; v++ {
			p.Attrs[a].V[v] = geom.Vec4{
				X: rng.Float32(), Y: rng.Float32(),
				Z: rng.Float32(), W: 1,
			}
		}
	}
	return p
}

// measure bins the frame and computes its realized statistics.
func measure(screen geom.Screen, f *Frame) Stats {
	var st Stats
	st.Primitives = len(f.Prims)
	var attrSum int
	var buf []geom.TileID
	for i := range f.Prims {
		p := &f.Prims[i]
		buf = screen.OverlappedTiles(p, buf[:0])
		st.TotalOverlaps += len(buf)
		attrSum += len(p.Attrs)
	}
	if st.Primitives > 0 {
		st.AvgPrimReuse = float64(st.TotalOverlaps) / float64(st.Primitives)
		st.AvgAttrs = float64(attrSum) / float64(st.Primitives)
	}
	st.AvgPrimsTile = float64(st.TotalOverlaps) / float64(screen.NumTiles())
	// Attributes are 48 bytes, block-aligned: one 64-byte block each.
	// Each overlap costs one 4-byte PMD in a tile list.
	st.PBFootprint = int64(attrSum)*64 + int64(st.TotalOverlaps)*4
	return st
}

// Measure exposes the frame statistics computation for callers outside the
// generation loop (experiments, tests).
func Measure(screen geom.Screen, f *Frame) Stats { return measure(screen, f) }

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
