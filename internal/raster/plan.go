package raster

import (
	"math"

	"tcor/internal/geom"
	"tcor/internal/mem"
	"tcor/internal/memmap"
	"tcor/internal/trace"
)

// TilePlan is the deterministic record of one tile's raster work: the quad
// tallies from coverage and depth testing plus the tile's entire memory
// access stream, laid out struct-of-arrays so planning appends to two flat
// slices instead of allocating per-access records. A plan is a pure
// function of (tile, frame, primitive list, config) — it never reads cache
// or DRAM state — which is what lets per-tile planning run on a worker
// pool while CommitPlan replays the streams into the shared hierarchy in
// strict tile-position order.
type TilePlan struct {
	Code geom.TileCode // tile identity (tile ID + traversal position)

	Prims        int64 // primitive-tile pairs rasterized
	Quads        int64 // quads covered before Early-Z
	QuadsShaded  int64 // quads surviving Early-Z
	LateZQuads   int64
	BlendedQuads int64

	// Texture tap stream in issue order (struct of arrays): the byte
	// address of each tap and the texture cache it routes to.
	TapAddrs []uint64
	TapCache []uint8

	// Color Buffer flush: FBBlocks block writes starting at FBBase.
	FBBase   uint64
	FBBlocks int64
}

// Reset clears the plan for reuse, keeping the tap capacity.
func (p *TilePlan) Reset() {
	p.Code = 0
	p.Prims, p.Quads, p.QuadsShaded, p.LateZQuads, p.BlendedQuads = 0, 0, 0, 0, 0
	p.TapAddrs = p.TapAddrs[:0]
	p.TapCache = p.TapCache[:0]
	p.FBBase, p.FBBlocks = 0, 0
}

// PlanScratch is the worker-private state PlanTile needs: the on-chip
// Z-buffer for one tile. Each concurrent planner owns one.
type PlanScratch struct {
	depth []float32
}

// NewScratch allocates a planning scratch sized for this pipeline's tiles.
func (p *Pipeline) NewScratch() *PlanScratch {
	return &PlanScratch{depth: make([]float32, p.tileQuads*p.tileQuads)}
}

// PlanTile computes the tile's raster plan into plan (which it resets
// first). It reads only immutable pipeline configuration, so distinct
// (scratch, plan) pairs may plan distinct tiles concurrently. The plan,
// committed in order, reproduces RasterTile's effects exactly.
func (p *Pipeline) PlanTile(tile geom.TileID, frame int, work []TileWork, sc *PlanScratch, plan *TilePlan) {
	plan.Reset()
	plan.Code = geom.PackTileCode(tile, 0, 0)
	rect := p.cfg.Screen.TileRect(tile)
	for i := range sc.depth {
		sc.depth[i] = math.MaxFloat32
	}
	for _, w := range work {
		plan.Prims++
		plan.QuadsShaded += p.planPrim(w.Prim, rect, frame, sc, plan)
	}

	pixels := int64(rect.Width()) * int64(rect.Height())
	plan.FBBlocks = (pixels*4 + memmap.BlockBytes - 1) / memmap.BlockBytes
	plan.FBBase = memmap.FrameBufferBase + uint64(tile)*uint64(p.cfg.Screen.TileSize*p.cfg.Screen.TileSize*4)
}

// CommitPlan replays the plan's access streams into the shared texture
// caches, L2 and Frame Buffer and folds its tallies into the pipeline
// statistics, returning the tile's raster cycles. Commit order across tiles
// must match the serial traversal order; the replay itself is identical to
// what RasterTile would have issued inline.
func (p *Pipeline) CommitPlan(plan *TilePlan) int64 {
	p.stats.Primitives += plan.Prims
	p.stats.Quads += plan.Quads
	p.stats.LateZQuads += plan.LateZQuads
	p.stats.BlendedQuads += plan.BlendedQuads

	for i, addr := range plan.TapAddrs {
		p.stats.TexAccesses++
		res := p.tex[plan.TapCache[i]].Access(trace.Access{Key: trace.Key(memmap.Block(addr))})
		if !res.Hit {
			p.stats.TexMisses++
			p.l2.Access(mem.Request{Addr: addr &^ (memmap.BlockBytes - 1)})
		}
	}

	fragments := plan.QuadsShaded * QuadSize * QuadSize
	instr := fragments * int64(p.cfg.ShaderInstrPerPixel)
	p.stats.QuadsShaded += plan.QuadsShaded
	p.stats.Fragments += fragments
	p.stats.InstrExecuted += instr

	for b := int64(0); b < plan.FBBlocks; b++ {
		p.fb.Access(mem.Request{Addr: plan.FBBase + uint64(b)*memmap.BlockBytes, Write: true})
	}
	p.stats.FBBlocksFlushed += plan.FBBlocks

	cycles := instr / int64(p.cfg.NumFragmentProcessors)
	if cycles == 0 && plan.Prims > 0 {
		cycles = 1
	}
	p.stats.ShadeCycles += cycles
	return cycles
}

// planPrim is the pure half of rasterPrim: it walks the quads of the
// primitive's bbox inside the tile, testing coverage and Early-Z against
// the scratch Z-buffer, and records the texture taps of surviving quads
// into the plan instead of issuing them.
func (p *Pipeline) planPrim(pr *geom.Primitive, tile geom.Rect, frame int, sc *PlanScratch, plan *TilePlan) int64 {
	bb := pr.BBox()
	x0 := maxF(bb.Min.X, tile.Min.X)
	y0 := maxF(bb.Min.Y, tile.Min.Y)
	x1 := minF(bb.Max.X, tile.Max.X)
	y1 := minF(bb.Max.Y, tile.Max.Y)
	if x0 >= x1 || y0 >= y1 {
		return 0
	}
	// Snap to the tile's quad grid.
	qx0 := int(x0-tile.Min.X) / QuadSize
	qy0 := int(y0-tile.Min.Y) / QuadSize
	qx1 := int(x1-tile.Min.X-0.0001) / QuadSize
	qy1 := int(y1-tile.Min.Y-0.0001) / QuadSize
	if qx1 >= p.tileQuads {
		qx1 = p.tileQuads - 1
	}
	if qy1 >= p.tileQuads {
		qy1 = p.tileQuads - 1
	}
	z := (pr.Depth[0] + pr.Depth[1] + pr.Depth[2]) / 3
	// Depth-writing materials disable the Early Z-Test (§II-A); the choice
	// is a deterministic per-primitive hash so a given fraction of the
	// geometry takes the late path.
	lateZ := p.cfg.LateZFraction > 0 &&
		float64(pr.ID*2654435761%1000) < p.cfg.LateZFraction*1000
	// Translucent materials neither occlude nor get occluded by later
	// translucent layers; they blend over whatever is resident.
	translucent := p.cfg.TranslucentFraction > 0 &&
		float64(pr.ID*40503%1000) < p.cfg.TranslucentFraction*1000
	var survived int64
	for qy := qy0; qy <= qy1; qy++ {
		for qx := qx0; qx <= qx1; qx++ {
			cx := tile.Min.X + float32(qx*QuadSize) + QuadSize/2
			cy := tile.Min.Y + float32(qy*QuadSize) + QuadSize/2
			if !geom.PointInTriangle(geom.Vec2{X: cx, Y: cy}, pr.Pos[0], pr.Pos[1], pr.Pos[2]) {
				continue
			}
			plan.Quads++
			di := qy*p.tileQuads + qx
			if translucent {
				// Blend: depth-tested against opaque geometry but never
				// written; the Color Buffer is read and re-written.
				if z >= sc.depth[di] {
					continue
				}
				plan.BlendedQuads++
				survived++
				p.planTaps(pr, cx, cy, frame, plan)
				continue
			}
			if !lateZ {
				// Early-Z: opaque geometry in submission order.
				if z >= sc.depth[di] {
					continue
				}
				sc.depth[di] = z
				survived++
				p.planTaps(pr, cx, cy, frame, plan)
				continue
			}
			// Late-Z: shade unconditionally, then depth-test the result.
			plan.LateZQuads++
			survived++
			p.planTaps(pr, cx, cy, frame, plan)
			if z < sc.depth[di] {
				sc.depth[di] = z
			}
		}
	}
	return survived
}

// planTaps records the texel accesses of a shaded quad into the plan's tap
// stream: the same address arithmetic as the inline textureFetch, minus the
// cache simulation (which CommitPlan performs during the ordered replay).
func (p *Pipeline) planTaps(pr *geom.Primitive, x, y float32, frame int, plan *TilePlan) {
	if p.cfg.TextureBytes <= 0 {
		return
	}
	// Per-primitive deterministic offset spreads objects across the atlas.
	off := uint64(pr.ID) * 2654435761
	texW := p.texW
	var mipBase uint64
	if p.cfg.Bilinear {
		// LOD from screen area: primitives smaller than ~1 tile use mip 1+,
		// tiny ones coarser still. Mip i halves the resolution and lives
		// after the previous levels.
		area := pr.Area()
		lod := 0
		for threshold := float32(1024); area < threshold && lod < 4; threshold /= 4 {
			lod++
		}
		for i := 0; i < lod; i++ {
			mipBase += texW * texW * 4
			texW /= 2
			if texW < 8 {
				texW = 8
			}
		}
	}
	u := (uint64(x) + off) % texW
	v := (uint64(y) + off>>16 + uint64(frame)*7) % texW
	cacheIdx := uint8((int(x)/p.cfg.Screen.TileSize + int(y)/p.cfg.Screen.TileSize) % p.cfg.NumTexCaches)
	plan.TapAddrs = append(plan.TapAddrs, memmap.TexturesBase+mipBase+(v*texW+u)*4)
	plan.TapCache = append(plan.TapCache, cacheIdx)
	if p.cfg.Bilinear {
		for _, tp := range [3][2]uint64{
			{(u + 1) % texW, v},
			{u, (v + 1) % texW},
			{(u + 1) % texW, (v + 1) % texW},
		} {
			plan.TapAddrs = append(plan.TapAddrs, memmap.TexturesBase+mipBase+(tp[1]*texW+tp[0])*4)
			plan.TapCache = append(plan.TapCache, cacheIdx)
		}
	}
}
