// Package raster models the Raster Pipeline of the TBR GPU (paper Fig. 2):
// per-tile rasterization into quads, the on-chip Z-buffer with Early-Z
// rejection, fragment shading with its texture caches and instruction
// caches, blending into the on-chip Color Buffer, and the flush of finished
// tiles to the Frame Buffer in main memory.
//
// The pipeline exists in this reproduction for two reasons: it generates the
// non-Parameter-Buffer memory traffic (textures, instructions, frame buffer)
// that shares the L2 with the Tile Cache — which is what the TCOR L2
// replacement policy arbitrates against — and it provides the per-tile cycle
// counts that dilute the Tiling Engine speedup into the modest FPS gains of
// §V-B3.
package raster

import (
	"fmt"
	"math"

	"tcor/internal/cache"
	"tcor/internal/geom"
	"tcor/internal/mem"
	"tcor/internal/memmap"
	"tcor/internal/stats"
)

// QuadSize is the fragment-quad edge in pixels: fragment processors work on
// 2x2 pixel quads.
const QuadSize = 2

// Config describes the Raster Pipeline resources (Table I).
type Config struct {
	Screen geom.Screen
	// NumTexCaches is the number of L1 texture caches (Table I: 4),
	// partitioned across fragment processors by screen-space interleaving.
	NumTexCaches  int
	TexCacheBytes int
	TexCacheWays  int
	// TextureBytes is the workload's texture working-set footprint.
	TextureBytes int64
	// ShaderInstrPerPixel is the average fragment shader length.
	ShaderInstrPerPixel int
	// NumFragmentProcessors sets the shading throughput (instructions per
	// cycle across the tile).
	NumFragmentProcessors int
	// LateZFraction is the share of primitives whose fragment shader
	// modifies depth: for those the Early Z-Test is disabled and the Late
	// Z-Test runs after shading (paper §II-A), so occluded quads still pay
	// full shading and texture cost.
	LateZFraction float64
	// TranslucentFraction is the share of primitives drawn with alpha
	// blending (paper §II-A's Blending unit): translucent quads never
	// occlude (they do not write depth), always shade, and perform a
	// read-modify-write on the on-chip Color Buffer.
	TranslucentFraction float64
	// Bilinear enables 4-tap bilinear filtering with mip selection: each
	// shaded quad samples a 2x2 texel footprint at a level of detail
	// derived from the primitive's screen magnification. Off by default
	// (one tap per quad), matching the calibrated traffic model; turn on
	// for texture-system sensitivity studies.
	Bilinear bool
}

// DefaultConfig returns the Table I raster configuration for a workload's
// texture footprint and shader length.
func DefaultConfig(screen geom.Screen, textureBytes int64, instrPerPixel int) Config {
	return Config{
		Screen:                screen,
		NumTexCaches:          4,
		TexCacheBytes:         64 * 1024,
		TexCacheWays:          4,
		TextureBytes:          textureBytes,
		ShaderInstrPerPixel:   instrPerPixel,
		NumFragmentProcessors: 4,
	}
}

// Stats accumulates Raster Pipeline counters.
type Stats struct {
	Primitives      int64 // primitive-tile pairs rasterized
	Quads           int64 // quads covered before Early-Z
	QuadsShaded     int64 // quads surviving Early-Z
	Fragments       int64 // pixels shaded
	InstrExecuted   int64
	TexAccesses     int64
	TexMisses       int64
	LateZQuads      int64 // quads shaded despite occlusion risk (Late Z-Test)
	BlendedQuads    int64 // quads blended into the Color Buffer (read-modify-write)
	FBBlocksFlushed int64
	ShadeCycles     int64 // fragment-shading cycles across all tiles
}

// Publish stores the counters into a stats registry under prefix.
func (s Stats) Publish(r *stats.Registry, prefix string) {
	r.Counter(prefix + ".primitives").Store(s.Primitives)
	r.Counter(prefix + ".quads").Store(s.Quads)
	r.Counter(prefix + ".quadsShaded").Store(s.QuadsShaded)
	r.Counter(prefix + ".fragments").Store(s.Fragments)
	r.Counter(prefix + ".instrExecuted").Store(s.InstrExecuted)
	r.Counter(prefix + ".texAccesses").Store(s.TexAccesses)
	r.Counter(prefix + ".texMisses").Store(s.TexMisses)
	r.Counter(prefix + ".lateZQuads").Store(s.LateZQuads)
	r.Counter(prefix + ".blendedQuads").Store(s.BlendedQuads)
	r.Counter(prefix + ".fbBlocksFlushed").Store(s.FBBlocksFlushed)
	r.Counter(prefix + ".shadeCycles").Store(s.ShadeCycles)
}

// RegisterStatsInvariants registers the Raster Pipeline consistency checks:
// Early-Z can only cull quads, and texture misses are a subset of accesses.
func RegisterStatsInvariants(r *stats.Registry, prefix string) {
	r.RegisterInvariant(prefix+".quadsShaded<=quads", func(s stats.Snapshot) error {
		if qs, q := s.Get(prefix+".quadsShaded"), s.Get(prefix+".quads"); qs > q {
			return fmt.Errorf("%d shaded quads exceed %d covered quads", qs, q)
		}
		return nil
	})
	r.RegisterInvariant(prefix+".texMisses<=texAccesses", func(s stats.Snapshot) error {
		if m, a := s.Get(prefix+".texMisses"), s.Get(prefix+".texAccesses"); m > a {
			return fmt.Errorf("%d texture misses exceed %d accesses", m, a)
		}
		return nil
	})
}

// Pipeline is the Raster Pipeline model.
type Pipeline struct {
	cfg   Config
	tex   []*cache.Cache
	l2    mem.Sink
	fb    mem.Sink // Color Buffer flush target (main memory, bypassing L2, Fig. 5)
	stats Stats

	texW      uint64 // texture width in texels (square working set, 4 B/texel)
	tileQuads int    // quads per full tile edge

	// scratch and plan serve the serial RasterTile path; concurrent
	// planners bring their own via NewScratch + PlanTile.
	scratch *PlanScratch
	plan    TilePlan
}

// New builds the pipeline. l2 receives texture-cache misses; fb receives
// Color Buffer flushes (the paper's memory organization sends those straight
// to main memory).
func New(cfg Config, l2Sink, fbSink mem.Sink) (*Pipeline, error) {
	if err := cfg.Screen.Validate(); err != nil {
		return nil, err
	}
	if cfg.NumTexCaches <= 0 || cfg.NumFragmentProcessors <= 0 {
		return nil, fmt.Errorf("raster: need at least one texture cache and fragment processor")
	}
	if cfg.NumTexCaches > 256 {
		return nil, fmt.Errorf("raster: %d texture caches exceed the 256 the plan's tap routing encodes", cfg.NumTexCaches)
	}
	if l2Sink == nil || fbSink == nil {
		return nil, fmt.Errorf("raster: nil sink")
	}
	p := &Pipeline{cfg: cfg, l2: l2Sink, fb: fbSink}
	for i := 0; i < cfg.NumTexCaches; i++ {
		c, err := cache.New(cache.Config{
			Lines:         cache.LinesFor(cfg.TexCacheBytes, memmap.BlockBytes),
			Ways:          cfg.TexCacheWays,
			WriteAllocate: true,
		}, cache.NewLRU())
		if err != nil {
			return nil, fmt.Errorf("raster: texture cache: %w", err)
		}
		p.tex = append(p.tex, c)
	}
	texels := cfg.TextureBytes / 4
	if texels < 64 {
		texels = 64
	}
	p.texW = uint64(math.Sqrt(float64(texels)))
	ts := cfg.Screen.TileSize
	p.tileQuads = (ts + QuadSize - 1) / QuadSize
	p.scratch = p.NewScratch()
	return p, nil
}

// Stats returns a copy of the counters.
func (p *Pipeline) Stats() Stats { return p.stats }

// TexCacheStats returns the aggregate texture-cache statistics.
func (p *Pipeline) TexCacheStats() cache.Stats {
	var agg cache.Stats
	for _, c := range p.tex {
		s := c.Stats()
		agg.Accesses += s.Accesses
		agg.Hits += s.Hits
		agg.Misses += s.Misses
		agg.Writebacks += s.Writebacks
	}
	return agg
}

// TileWork is one primitive scheduled into a tile, in list order.
type TileWork struct {
	Prim *geom.Primitive
}

// RasterTile rasterizes one tile's primitive list (in order) and returns the
// cycles the Raster Pipeline spent on the tile. It models:
//   - quad coverage by exact point-in-triangle tests at quad centers,
//   - Early-Z rejection against the on-chip Z-buffer (opaque geometry,
//     painter's order),
//   - one texture access per surviving quad through the screen-interleaved
//     texture caches (misses go to the L2),
//   - fragment shading cost (instructions/pixel over the fragment
//     processors),
//   - the Color Buffer flush of the finished tile to the Frame Buffer.
func (p *Pipeline) RasterTile(tile geom.TileID, frame int, work []TileWork) int64 {
	p.PlanTile(tile, frame, work, p.scratch, &p.plan)
	return p.CommitPlan(&p.plan)
}

// InstrFootprintBlocks returns the number of instruction blocks the fragment
// shader program occupies (16 bytes per instruction): the per-frame L2
// instruction fill cost. Instruction caches hit essentially always after the
// first iteration, so per-instruction traffic is accounted arithmetically.
func (p *Pipeline) InstrFootprintBlocks() int64 {
	bytes := int64(p.cfg.ShaderInstrPerPixel) * 16
	return (bytes + memmap.BlockBytes - 1) / memmap.BlockBytes
}

// EndFrame flushes per-frame state. Texture caches persist across frames
// (textures are read-only and reused); nothing to do currently, but the
// hook keeps the pipeline symmetric with the cache hierarchy.
func (p *Pipeline) EndFrame() {}

func minF(a, b float32) float32 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float32) float32 {
	if a > b {
		return a
	}
	return b
}
