package raster

import (
	"testing"

	"tcor/internal/geom"
	"tcor/internal/mem"
	"tcor/internal/memmap"
)

func newPipeline(t *testing.T) (*Pipeline, *mem.Counter, *mem.Counter) {
	t.Helper()
	screen := geom.Screen{Width: 96, Height: 96, TileSize: 32}
	l2 := mem.NewCounter()
	fb := mem.NewCounter()
	p, err := New(DefaultConfig(screen, 1<<20, 8), l2, fb)
	if err != nil {
		t.Fatal(err)
	}
	return p, l2, fb
}

func tri(id uint32, a, b, c geom.Vec2, z float32) *geom.Primitive {
	return &geom.Primitive{
		ID:    id,
		Pos:   [3]geom.Vec2{a, b, c},
		Depth: [3]float32{z, z, z},
		Attrs: []geom.Attribute{{}},
	}
}

func TestNewValidates(t *testing.T) {
	screen := geom.Screen{Width: 96, Height: 96, TileSize: 32}
	if _, err := New(DefaultConfig(geom.Screen{}, 0, 1), mem.NewCounter(), mem.NewCounter()); err == nil {
		t.Error("invalid screen must fail")
	}
	cfg := DefaultConfig(screen, 0, 1)
	cfg.NumTexCaches = 0
	if _, err := New(cfg, mem.NewCounter(), mem.NewCounter()); err == nil {
		t.Error("zero texture caches must fail")
	}
	if _, err := New(DefaultConfig(screen, 0, 1), nil, mem.NewCounter()); err == nil {
		t.Error("nil l2 must fail")
	}
}

func TestRasterTileCoverageAndFlush(t *testing.T) {
	p, _, fb := newPipeline(t)
	// A triangle covering the whole of tile 0 (tile rect [0,32)x[0,32)).
	full := tri(0, geom.Vec2{X: -10, Y: -10}, geom.Vec2{X: 100, Y: -10}, geom.Vec2{X: -10, Y: 100}, 0.5)
	cycles := p.RasterTile(0, 0, []TileWork{{Prim: full}})
	st := p.Stats()
	// 16x16 quads fully covered.
	if st.QuadsShaded != 256 {
		t.Errorf("quads shaded = %d, want 256", st.QuadsShaded)
	}
	if st.Fragments != 1024 {
		t.Errorf("fragments = %d, want 1024", st.Fragments)
	}
	if cycles != 1024*8/4 {
		t.Errorf("cycles = %d", cycles)
	}
	// Color buffer flush: 32*32*4/64 = 64 blocks.
	if st.FBBlocksFlushed != 64 {
		t.Errorf("FB blocks = %d, want 64", st.FBBlocksFlushed)
	}
	if fb.Region(memmap.RegionFrameBuffer).Writes != 64 {
		t.Errorf("FB writes = %+v", fb.Region(memmap.RegionFrameBuffer))
	}
}

func TestEarlyZKillsOccludedQuads(t *testing.T) {
	p, _, _ := newPipeline(t)
	near := tri(0, geom.Vec2{X: -10, Y: -10}, geom.Vec2{X: 100, Y: -10}, geom.Vec2{X: -10, Y: 100}, 0.1)
	far := tri(1, geom.Vec2{X: -10, Y: -10}, geom.Vec2{X: 100, Y: -10}, geom.Vec2{X: -10, Y: 100}, 0.9)
	p.RasterTile(0, 0, []TileWork{{Prim: near}, {Prim: far}})
	st := p.Stats()
	if st.QuadsShaded != 256 {
		t.Errorf("occluded primitive shaded: %d quads", st.QuadsShaded)
	}
	if st.Quads != 512 {
		t.Errorf("coverage should count both prims: %d", st.Quads)
	}
}

func TestPainterOrderOverdraw(t *testing.T) {
	p, _, _ := newPipeline(t)
	// Far first, then near: both shade (no reverse-order rejection).
	far := tri(0, geom.Vec2{X: -10, Y: -10}, geom.Vec2{X: 100, Y: -10}, geom.Vec2{X: -10, Y: 100}, 0.9)
	near := tri(1, geom.Vec2{X: -10, Y: -10}, geom.Vec2{X: 100, Y: -10}, geom.Vec2{X: -10, Y: 100}, 0.1)
	p.RasterTile(0, 0, []TileWork{{Prim: far}, {Prim: near}})
	if p.Stats().QuadsShaded != 512 {
		t.Errorf("quads shaded = %d, want 512 (overdraw)", p.Stats().QuadsShaded)
	}
}

func TestTextureLocality(t *testing.T) {
	p, l2, _ := newPipeline(t)
	full := tri(0, geom.Vec2{X: -10, Y: -10}, geom.Vec2{X: 100, Y: -10}, geom.Vec2{X: -10, Y: 100}, 0.5)
	p.RasterTile(0, 0, []TileWork{{Prim: full}})
	st := p.Stats()
	if st.TexAccesses != 256 {
		t.Fatalf("tex accesses = %d", st.TexAccesses)
	}
	// Adjacent quads share texel blocks: misses must be far below accesses.
	if st.TexMisses*2 > st.TexAccesses {
		t.Errorf("texture locality broken: %d misses / %d accesses", st.TexMisses, st.TexAccesses)
	}
	if l2.Region(memmap.RegionTextures).Reads != st.TexMisses {
		t.Error("every texture miss must reach the L2")
	}
	// Re-rendering the same tile in the same frame hits the texture cache.
	before := p.Stats().TexMisses
	p.RasterTile(0, 0, []TileWork{{Prim: full}})
	if p.Stats().TexMisses != before {
		t.Error("warm texture cache should not miss")
	}
}

func TestPartialTileClipsFlush(t *testing.T) {
	// Screen 40x40 with 32-tiles: tile 3 is 8x8 pixels.
	screen := geom.Screen{Width: 40, Height: 40, TileSize: 32}
	p, err := New(DefaultConfig(screen, 1<<16, 4), mem.NewCounter(), mem.NewCounter())
	if err != nil {
		t.Fatal(err)
	}
	p.RasterTile(3, 0, nil)
	// 8*8*4 = 256 bytes = 4 blocks.
	if p.Stats().FBBlocksFlushed != 4 {
		t.Errorf("partial tile flushed %d blocks, want 4", p.Stats().FBBlocksFlushed)
	}
}

func TestZeroTextureWorkload(t *testing.T) {
	screen := geom.Screen{Width: 64, Height: 64, TileSize: 32}
	p, err := New(DefaultConfig(screen, 0, 4), mem.NewCounter(), mem.NewCounter())
	if err != nil {
		t.Fatal(err)
	}
	full := tri(0, geom.Vec2{X: -10, Y: -10}, geom.Vec2{X: 100, Y: -10}, geom.Vec2{X: -10, Y: 100}, 0.5)
	p.RasterTile(0, 0, []TileWork{{Prim: full}})
	if p.Stats().TexAccesses != 0 {
		t.Error("no texture accesses expected for zero footprint")
	}
}

func TestInstrFootprintBlocks(t *testing.T) {
	p, _, _ := newPipeline(t)
	// 8 instr * 16 B = 128 B = 2 blocks.
	if got := p.InstrFootprintBlocks(); got != 2 {
		t.Errorf("instr blocks = %d", got)
	}
}

func TestLateZShadesOccludedQuads(t *testing.T) {
	screen := geom.Screen{Width: 64, Height: 64, TileSize: 32}
	cfg := DefaultConfig(screen, 1<<16, 4)
	cfg.LateZFraction = 1 // every primitive writes depth
	p, err := New(cfg, mem.NewCounter(), mem.NewCounter())
	if err != nil {
		t.Fatal(err)
	}
	near := tri(0, geom.Vec2{X: -10, Y: -10}, geom.Vec2{X: 100, Y: -10}, geom.Vec2{X: -10, Y: 100}, 0.1)
	far := tri(1, geom.Vec2{X: -10, Y: -10}, geom.Vec2{X: 100, Y: -10}, geom.Vec2{X: -10, Y: 100}, 0.9)
	p.RasterTile(0, 0, []TileWork{{Prim: near}, {Prim: far}})
	st := p.Stats()
	// With Late-Z both layers shade (256 quads each) even though the far
	// one is fully occluded; with Early-Z (see TestEarlyZKillsOccludedQuads)
	// only 256 shade.
	if st.QuadsShaded != 512 {
		t.Errorf("late-z shaded %d quads, want 512", st.QuadsShaded)
	}
	if st.LateZQuads != 512 {
		t.Errorf("late-z counter = %d", st.LateZQuads)
	}
}

func TestLateZFractionZeroIsEarlyZ(t *testing.T) {
	screen := geom.Screen{Width: 64, Height: 64, TileSize: 32}
	p, err := New(DefaultConfig(screen, 1<<16, 4), mem.NewCounter(), mem.NewCounter())
	if err != nil {
		t.Fatal(err)
	}
	near := tri(0, geom.Vec2{X: -10, Y: -10}, geom.Vec2{X: 100, Y: -10}, geom.Vec2{X: -10, Y: 100}, 0.1)
	far := tri(1, geom.Vec2{X: -10, Y: -10}, geom.Vec2{X: 100, Y: -10}, geom.Vec2{X: -10, Y: 100}, 0.9)
	p.RasterTile(0, 0, []TileWork{{Prim: near}, {Prim: far}})
	if p.Stats().LateZQuads != 0 {
		t.Error("late-z path taken with fraction 0")
	}
}

func TestBilinearSamplesFourTaps(t *testing.T) {
	screen := geom.Screen{Width: 64, Height: 64, TileSize: 32}
	cfg := DefaultConfig(screen, 1<<20, 4)
	cfg.Bilinear = true
	p, err := New(cfg, mem.NewCounter(), mem.NewCounter())
	if err != nil {
		t.Fatal(err)
	}
	full := tri(0, geom.Vec2{X: -10, Y: -10}, geom.Vec2{X: 100, Y: -10}, geom.Vec2{X: -10, Y: 100}, 0.5)
	p.RasterTile(0, 0, []TileWork{{Prim: full}})
	st := p.Stats()
	if st.TexAccesses != 4*st.QuadsShaded {
		t.Errorf("tex accesses = %d, want 4 per shaded quad (%d)", st.TexAccesses, st.QuadsShaded)
	}
	// Neighbouring taps share blocks: locality must remain strong.
	if st.TexMisses*3 > st.TexAccesses {
		t.Errorf("bilinear locality broken: %d misses / %d accesses", st.TexMisses, st.TexAccesses)
	}
}

func TestBilinearMipSelection(t *testing.T) {
	screen := geom.Screen{Width: 64, Height: 64, TileSize: 32}
	cfg := DefaultConfig(screen, 1<<20, 4)
	cfg.Bilinear = true
	p, err := New(cfg, mem.NewCounter(), mem.NewCounter())
	if err != nil {
		t.Fatal(err)
	}
	// A tiny primitive (low screen area) must sample from a coarse mip:
	// its working set is small, so repeated tiny prims at scattered
	// positions should hit well.
	for i := 0; i < 200; i++ {
		x := float32((i * 7) % 28)
		y := float32((i * 11) % 28)
		tiny := tri(uint32(i), geom.Vec2{X: x, Y: y}, geom.Vec2{X: x + 2, Y: y}, geom.Vec2{X: x, Y: y + 2}, 0.5)
		p.RasterTile(0, 0, []TileWork{{Prim: tiny}})
	}
	st := p.Stats()
	if st.TexAccesses == 0 {
		t.Fatal("no texture accesses")
	}
	missRate := float64(st.TexMisses) / float64(st.TexAccesses)
	if missRate > 0.5 {
		t.Errorf("coarse-mip miss rate = %.2f; mip selection apparently broken", missRate)
	}
}

func TestTranslucentBlending(t *testing.T) {
	screen := geom.Screen{Width: 64, Height: 64, TileSize: 32}
	cfg := DefaultConfig(screen, 1<<16, 4)
	cfg.TranslucentFraction = 1 // everything blends
	p, err := New(cfg, mem.NewCounter(), mem.NewCounter())
	if err != nil {
		t.Fatal(err)
	}
	// Two full layers: both blend (translucents never occlude each other).
	a := tri(0, geom.Vec2{X: -10, Y: -10}, geom.Vec2{X: 100, Y: -10}, geom.Vec2{X: -10, Y: 100}, 0.3)
	b := tri(1, geom.Vec2{X: -10, Y: -10}, geom.Vec2{X: 100, Y: -10}, geom.Vec2{X: -10, Y: 100}, 0.6)
	p.RasterTile(0, 0, []TileWork{{Prim: a}, {Prim: b}})
	st := p.Stats()
	if st.BlendedQuads != 512 || st.QuadsShaded != 512 {
		t.Errorf("blended/shaded = %d/%d, want 512/512", st.BlendedQuads, st.QuadsShaded)
	}
	// Translucents still z-test against opaque geometry: an opaque layer in
	// front kills later translucent quads... but with fraction 1 there is
	// no opaque geometry in this test; verified indirectly by the depth
	// buffer remaining untouched (a third farther layer still shades).
	c := tri(2, geom.Vec2{X: -10, Y: -10}, geom.Vec2{X: 100, Y: -10}, geom.Vec2{X: -10, Y: 100}, 0.9)
	p.RasterTile(0, 0, []TileWork{{Prim: c}})
	if p.Stats().BlendedQuads != 768 {
		t.Errorf("translucent layer occluded by translucent: %d", p.Stats().BlendedQuads)
	}
}
