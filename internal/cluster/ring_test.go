package cluster

import (
	"fmt"
	"testing"
)

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
	}
	return keys
}

func TestRingDeterministic(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:2", "http://c:3"}
	r1, err := NewRing(nodes, 64)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRing(nodes, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range testKeys(500) {
		if r1.Owner(k) != r2.Owner(k) {
			t.Fatalf("two rings from the same membership disagree on %q", k)
		}
	}
}

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty membership accepted")
	}
	if _, err := NewRing([]string{"a", "a"}, 0); err == nil {
		t.Fatal("duplicate node accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Fatal("empty node name accepted")
	}
}

// TestRingBalance: with DefaultVNodes the largest ownership share of a
// 3-node ring stays within a factor of ~2 of even.
func TestRingBalance(t *testing.T) {
	r, err := NewRing([]string{"http://a:1", "http://b:2", "http://c:3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 3)
	keys := testKeys(9000)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	for i, c := range counts {
		frac := float64(c) / float64(len(keys))
		if frac < 0.15 || frac > 0.55 {
			t.Fatalf("node %d owns %.1f%% of the key space; want roughly even thirds (counts %v)",
				i, 100*frac, counts)
		}
	}
}

// TestRingMinimalMovement is the consistent-hashing property: adding a
// fourth node moves roughly a quarter of the keys, and every moved key
// moves TO the new node.
func TestRingMinimalMovement(t *testing.T) {
	old3 := []string{"http://a:1", "http://b:2", "http://c:3"}
	with4 := append(append([]string(nil), old3...), "http://d:4")
	r3, err := NewRing(old3, 0)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := NewRing(with4, 0)
	if err != nil {
		t.Fatal(err)
	}
	keys := testKeys(4000)
	moved := 0
	for _, k := range keys {
		a, b := r3.Owner(k), r4.Owner(k)
		if a != b {
			moved++
			if b != 3 {
				t.Fatalf("key %q moved from node %d to node %d; only the new node may gain keys", k, a, b)
			}
		}
	}
	frac := float64(moved) / float64(len(keys))
	if frac < 0.10 || frac > 0.45 {
		t.Fatalf("adding one node to three moved %.1f%% of keys; want ~25%%", 100*frac)
	}
}

func TestRingSuccessors(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:2", "http://c:3"}
	r, err := NewRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range testKeys(100) {
		succ := r.Successors(k)
		if len(succ) != len(nodes) {
			t.Fatalf("Successors(%q) has %d entries, want %d", k, len(succ), len(nodes))
		}
		if succ[0] != r.Owner(k) {
			t.Fatalf("Successors(%q) starts at node %d, owner is %d", k, succ[0], r.Owner(k))
		}
		seen := make(map[int]bool)
		for _, n := range succ {
			if seen[n] {
				t.Fatalf("Successors(%q) repeats node %d", k, n)
			}
			seen[n] = true
		}
	}
	// The failover order must differ across keys: it follows the ring,
	// not a fixed list.
	first := fmt.Sprint(r.Successors("key-0"))
	varies := false
	for _, k := range testKeys(100) {
		if fmt.Sprint(r.Successors(k)) != first {
			varies = true
			break
		}
	}
	if !varies {
		t.Fatal("every key has the same successor order; the ring is not spreading failover load")
	}
}
