package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
)

// DefaultVNodes is the virtual-node count per shard when Options leave it
// zero. 64 points per shard keeps the largest/smallest ownership arc
// within a few percent of even for small clusters while the ring stays a
// few KiB.
const DefaultVNodes = 64

// Ring is a consistent-hash ring over a fixed shard set. Keys are the
// serving layer's content addresses (serve.CanonicalKey): sha256 hex over
// the resolved workload spec and configuration. Both shard points and keys
// hash through sha256, so placement is deterministic across processes,
// platforms and restarts — a gateway and every shard agree on ownership
// from the shard list alone, with no coordination.
//
// The ring is immutable after construction; membership changes are a new
// Ring. All methods are safe for concurrent use.
type Ring struct {
	nodes  []string
	points []ringPoint // sorted by hash
}

// ringPoint is one virtual node: a position on the 64-bit ring owned by
// nodes[node].
type ringPoint struct {
	hash uint64
	node int
}

// NewRing builds a ring with vnodes virtual nodes per shard (0 =
// DefaultVNodes). Node names must be non-empty and unique — they are the
// hashed identity, so two gateways naming the same shards the same way
// produce identical rings.
func NewRing(nodes []string, vnodes int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := make(map[string]bool, len(nodes))
	r := &Ring{
		nodes:  append([]string(nil), nodes...),
		points: make([]ringPoint, 0, len(nodes)*vnodes),
	}
	for i, n := range nodes {
		if n == "" {
			return nil, fmt.Errorf("cluster: node %d has an empty name", i)
		}
		if seen[n] {
			return nil, fmt.Errorf("cluster: duplicate node %q", n)
		}
		seen[n] = true
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash: ringHash(n + "#" + strconv.Itoa(v)),
				node: i,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// A full sha256 collision between two distinct labels is not a
		// practical concern, but ties must still order deterministically.
		return r.points[a].node < r.points[b].node
	})
	return r, nil
}

// ringHash maps a label or key onto the ring: the first 8 bytes of its
// sha256, big-endian. Content addresses are already sha256 hex, but
// re-hashing costs little and makes placement independent of the key
// format.
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Nodes returns the shard names in construction order.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Owner returns the index (into Nodes) of the shard owning key: the node
// of the first ring point at or clockwise of the key's hash.
func (r *Ring) Owner(key string) int {
	return r.points[r.search(ringHash(key))].node
}

// Successors returns every node index in ring order starting at key's
// owner, each node once: the owner first, then the failover shards in the
// order a gateway should try them. The slice is freshly allocated.
func (r *Ring) Successors(key string) []int {
	out := make([]int, 0, len(r.nodes))
	seen := make([]bool, len(r.nodes))
	start := r.search(ringHash(key))
	for i := 0; i < len(r.points) && len(out) < len(r.nodes); i++ {
		n := r.points[(start+i)%len(r.points)].node
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

// search returns the index of the first point with hash >= h, wrapping to
// point 0 past the end of the ring.
func (r *Ring) search(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}
