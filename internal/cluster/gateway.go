package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"tcor/internal/buildinfo"
	"tcor/internal/resilience"
	"tcor/internal/serve"
	"tcor/internal/serve/client"
	"tcor/internal/stats"
)

// Options configure a Gateway. The zero value is not usable: Shards is
// required.
type Options struct {
	// Shards are the shard daemons' base URLs ("http://host:port"), each
	// a full tcord serving stack. The list is the ring membership — order
	// does not affect key placement (names are hashed), but it is the
	// index space of per-shard metrics and /v1/ring rows.
	Shards []string
	// VNodes is the virtual-node count per shard on the consistent-hash
	// ring (0 = DefaultVNodes).
	VNodes int
	// HedgeAfter controls request hedging on /v1/simulate: positive is a
	// fixed delay after which the gateway issues a second copy of the
	// request to the next shard on the ring; zero (the default) adapts
	// the delay to the observed p99 of proxied simulate latency (the
	// gw.proxy.duration histogram), floored at MinHedge and disabled
	// until HedgeWarmup samples exist; negative disables hedging.
	HedgeAfter time.Duration
	// MinHedge floors the adaptive hedge delay so a burst of cache hits
	// cannot drive it toward zero and double every request (0 = 50ms).
	MinHedge time.Duration
	// ProbeTimeout bounds the peer cache probe issued to a key's owner
	// before a failover shard is allowed to simulate it (0 = 1s).
	ProbeTimeout time.Duration
	// MaxSweepItems bounds one /v1/sweep at the gateway (0 = 1024). The
	// gateway chunks sweeps into sub-sweeps, so its bound is naturally
	// larger than a single shard's.
	MaxSweepItems int
	// ShardSweepItems caps the items of one sub-sweep sent to a shard;
	// it must not exceed the shards' own MaxSweepItems (0 = 64, the
	// shard default).
	ShardSweepItems int
	// MaxBodyBytes bounds request bodies; larger ones get 413 (0 = 1 MiB).
	MaxBodyBytes int64
	// DefaultTimeout is the per-request deadline when the request does
	// not carry one (0 = 60s); MaxTimeout clamps request-supplied
	// deadlines (0 = 10m). Both bound the whole hedged/failover chain.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// Retry configures the per-shard client's retry policy (nil = 3
	// attempts, 50ms base, 1s cap). Transient shard blips are absorbed
	// here; sustained failure surfaces to the gateway, trips the shard's
	// breaker and triggers failover.
	Retry *resilience.RetryPolicy
	// Breaker configures the per-shard circuit breakers the router
	// consults (nil = 8-outcome window, 0.5 ratio, 2s cooldown). An open
	// breaker takes its shard out of the candidate order until a probe
	// succeeds.
	Breaker *resilience.BreakerConfig
	// HTTPClient is the transport shared by every shard client (nil =
	// http.DefaultClient).
	HTTPClient *http.Client
	// Registry receives the gateway's metrics (nil = private, readable
	// via Gateway.Registry).
	Registry *stats.Registry
	// Logger receives the access log and lifecycle events (nil =
	// discard).
	Logger *slog.Logger
	// Chaos, when non-nil, is evaluated at resilience.SiteProxy once per
	// upstream attempt: an injected fault aborts the attempt before it
	// reaches the wire, exercising failover without a real shard death.
	Chaos *resilience.Injector
	// TraceCapacity bounds the gateway's in-memory span trace (0 = 4096
	// spans, negative = tracing disabled). Every request gets a root span;
	// each upstream attempt — hedge, failover, cache probe, sub-sweep —
	// becomes a child span whose identity is propagated to the shard in the
	// traceparent header, so the cluster trace collector can stitch the
	// per-process span sets back into one export.
	TraceCapacity int
}

// HedgeWarmup is how many proxied simulate latencies the adaptive hedger
// wants before it starts hedging: quantiles over fewer samples whipsaw.
const HedgeWarmup = 16

func (o Options) withDefaults() Options {
	if o.VNodes <= 0 {
		o.VNodes = DefaultVNodes
	}
	if o.MinHedge <= 0 {
		o.MinHedge = 50 * time.Millisecond
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = time.Second
	}
	if o.MaxSweepItems <= 0 {
		o.MaxSweepItems = 1024
	}
	if o.ShardSweepItems <= 0 {
		o.ShardSweepItems = 64
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 20
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 60 * time.Second
	}
	if o.MaxTimeout <= 0 {
		o.MaxTimeout = 10 * time.Minute
	}
	if o.Retry == nil {
		o.Retry = &resilience.RetryPolicy{
			MaxAttempts: 3,
			BaseDelay:   50 * time.Millisecond,
			MaxDelay:    time.Second,
		}
	}
	if o.Breaker == nil {
		o.Breaker = &resilience.BreakerConfig{
			Window:       8,
			MinSamples:   3,
			FailureRatio: 0.5,
			Cooldown:     2 * time.Second,
		}
	}
	if o.HTTPClient == nil {
		o.HTTPClient = http.DefaultClient
	}
	if o.Registry == nil {
		o.Registry = stats.NewRegistry()
	}
	if o.Logger == nil {
		o.Logger = slog.New(slog.DiscardHandler)
	}
	switch {
	case o.TraceCapacity == 0:
		o.TraceCapacity = 4096
	case o.TraceCapacity < 0:
		o.TraceCapacity = 0 // disabled; NewTracer returns the nil no-op
	}
	return o
}

// shard is one upstream daemon: a typed client (retry inside) plus the
// circuit breaker the router consults before sending work its way. idx is
// the shard's position in Options.Shards — the index space of per-shard
// metrics, the `shard` rollup label and the stitched trace's track names.
type shard struct {
	name   string
	idx    int
	client *client.Client
	brk    *resilience.Breaker
}

// Gateway fronts a set of tcord shard daemons with the same public API a
// single daemon serves. Simulations route to the shard owning their
// content address; sweeps fan out as per-owner sub-sweeps and reassemble
// in item order. Responses are byte-identical to a single node serving
// the same request.
type Gateway struct {
	opts   Options
	ring   *Ring
	shards []*shard
	reg    *stats.Registry
	logger *slog.Logger
	chaos  *resilience.Injector
	tracer *stats.Tracer // nil when TraceCapacity < 0

	mux      *http.ServeMux
	httpSrv  *http.Server
	draining atomic.Bool

	requests   *stats.Counter
	responses  [6]*stats.Counter
	panics     *stats.Counter
	latency    *stats.Histogram
	proxyDur   *stats.Histogram // successful proxied /v1/simulate calls, ns
	hedges     *stats.Counter
	hedgeWins  *stats.Counter
	failovers  *stats.Counter
	probeHits  *stats.Counter
	fallback   *stats.Counter // sweep items recovered item-by-item
	jobSubmits *stats.Counter // async submissions routed to a job's owner
	jobProxied *stats.Counter // job reads/cancels proxied to a shard
}

// NewGateway builds a gateway over opts.Shards. The shard list is fixed
// for the gateway's lifetime.
func NewGateway(opts Options) (*Gateway, error) {
	opts = opts.withDefaults()
	ring, err := NewRing(opts.Shards, opts.VNodes)
	if err != nil {
		return nil, err
	}
	reg := opts.Registry
	g := &Gateway{
		opts:       opts,
		ring:       ring,
		reg:        reg,
		logger:     opts.Logger,
		chaos:      opts.Chaos,
		tracer:     stats.NewTracer(opts.TraceCapacity),
		requests:   reg.Counter("gw.requests"),
		panics:     reg.Counter("gw.panics"),
		latency:    reg.Histogram("gw.latency"),
		proxyDur:   reg.Histogram("gw.proxy.duration"),
		hedges:     reg.Counter("gw.hedges"),
		hedgeWins:  reg.Counter("gw.hedge.wins"),
		failovers:  reg.Counter("gw.failovers"),
		probeHits:  reg.Counter("gw.probe.hits"),
		fallback:   reg.Counter("gw.sweep.fallbackItems"),
		jobSubmits: reg.Counter("gw.jobs.submits"),
		jobProxied: reg.Counter("gw.jobs.proxied"),
	}
	for c := 2; c <= 5; c++ {
		g.responses[c] = reg.Counter("gw.responses." + strconv.Itoa(c) + "xx")
	}
	for i, name := range opts.Shards {
		cfg := *opts.Breaker
		g.shards = append(g.shards, &shard{
			name: name,
			idx:  i,
			client: client.New(name, opts.HTTPClient,
				client.WithRetry(*opts.Retry),
				client.WithMetricsPrefix(reg, "gw.shard."+strconv.Itoa(i))),
			brk: resilience.NewBreaker(cfg),
		})
	}
	g.tracer.MeterDropped(reg.Counter("trace.dropped"))
	g.registerInvariants()

	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", g.handleHealthz)
	mux.HandleFunc("/readyz", g.handleReadyz)
	mux.HandleFunc("/v1/version", g.handleVersion)
	mux.HandleFunc("/v1/benchmarks", g.handleBenchmarks)
	mux.HandleFunc("/v1/stats", g.handleStats)
	mux.HandleFunc("/v1/ring", g.handleRing)
	mux.HandleFunc("/v1/simulate", g.handleSimulate)
	mux.HandleFunc("/v1/sweep", g.handleSweep)
	mux.HandleFunc("/v1/arena", g.handleArena)
	mux.HandleFunc("/v1/jobs", g.handleJobs)
	mux.HandleFunc("/v1/jobs/", g.handleJob)
	mux.HandleFunc("/v1/cluster/trace/", g.handleClusterTrace)
	mux.HandleFunc("/v1/cluster/metrics", g.handleClusterMetrics)
	mux.HandleFunc("/v1/cluster/health", g.handleClusterHealth)
	mux.Handle("/metrics", stats.MetricsHandler("tcord", reg))
	mux.HandleFunc("/debug/trace", g.handleDebugTrace)
	g.mux = mux
	return g, nil
}

// registerInvariants wires the routing-layer accounting identities.
func (g *Gateway) registerInvariants() {
	g.reg.RegisterInvariant("gw.hedgeWinsBounded", func(snap stats.Snapshot) error {
		if wins, hedges := snap.Get("gw.hedge.wins"), snap.Get("gw.hedges"); wins > hedges {
			return fmt.Errorf("hedge wins %d exceed hedges issued %d", wins, hedges)
		}
		return nil
	})
	g.reg.RegisterInvariant("gw.probeHitsBounded", func(snap stats.Snapshot) error {
		// A peer cache probe only happens on a failover attempt.
		if hits, fo := snap.Get("gw.probe.hits"), snap.Get("gw.failovers"); hits > fo {
			return fmt.Errorf("probe hits %d exceed failovers %d", hits, fo)
		}
		return nil
	})
}

// Registry returns the gateway's metric registry.
func (g *Gateway) Registry() *stats.Registry { return g.reg }

// Ring returns the gateway's placement ring.
func (g *Gateway) Ring() *Ring { return g.ring }

// CheckInvariants verifies the registry's registered invariants.
func (g *Gateway) CheckInvariants() error { return g.reg.Check() }

// Handler returns the gateway's HTTP handler with its middleware applied.
func (g *Gateway) Handler() http.Handler { return g.middleware(g.mux) }

// Start listens on addr (":0" picks a free port) and serves in the
// background, returning the bound address. Pair with Shutdown.
func (g *Gateway) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	g.httpSrv = &http.Server{Handler: g.Handler()}
	go g.httpSrv.Serve(ln) //nolint:errcheck // Serve always returns ErrServerClosed after Shutdown
	g.logger.Info("gateway listening", "addr", ln.Addr().String(), "shards", len(g.shards))
	return ln.Addr().String(), nil
}

// Shutdown drains the gateway: readiness flips to 503, new simulations
// are refused, in-flight proxied requests run to completion.
func (g *Gateway) Shutdown(ctx context.Context) error {
	g.draining.Store(true)
	if g.httpSrv == nil {
		return nil
	}
	return g.httpSrv.Shutdown(ctx)
}

// --- middleware and plumbing ---

type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// middleware mints/echoes the request ID (proxied shard calls inherit it
// through the context, so one ID is greppable across the gateway's and
// the shard's access logs), recovers panics, and meters every response.
func (g *Gateway) middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		g.requests.Inc()

		id := r.Header.Get(serve.RequestIDHeader)
		if id == "" || len(id) > 128 {
			id = serve.MintRequestID()
		}
		w.Header().Set(serve.RequestIDHeader, id)

		// Root the request's trace (joining a caller's when a valid
		// traceparent arrived) and echo the trace context on the response:
		// the caller of a hedged sweep learns the one ID under which
		// /v1/cluster/trace/<id> stitches every process's spans.
		var sp *stats.Span
		if parent, ok := stats.ExtractTraceparent(r.Header); ok {
			sp = g.tracer.BeginRemote("http.request", "cluster", parent)
		} else {
			sp = g.tracer.Begin("http.request", "cluster")
		}
		stats.InjectTraceparent(w.Header(), sp.Context())
		sp.SetAttr("method", r.Method)
		sp.SetAttr("path", r.URL.Path)
		sp.SetAttr("requestId", id)

		ctx := serve.ContextWithRequestID(r.Context(), id)
		// Lift the caller's tenant credential into the context: the per-shard
		// client re-applies it on every attempt, so quota and cache accounting
		// follow the caller through retries, hedges and failovers alike. The
		// gateway never resolves the credential itself — an unknown key is the
		// owning shard's 401 to give, passed through unchanged.
		ctx = serve.ContextWithTenantKey(ctx, serve.TenantKeyFromRequest(r))
		ctx = stats.ContextWithTracer(ctx, g.tracer)
		ctx = stats.ContextWithSpan(ctx, sp)
		r = r.WithContext(ctx)

		rec := &statusRecorder{ResponseWriter: w}
		defer func() {
			if p := recover(); p != nil {
				g.panics.Inc()
				g.logger.Error("panic", "id", id, "path", r.URL.Path, "panic", fmt.Sprint(p))
				if rec.status == 0 {
					g.writeError(rec, &gwError{status: http.StatusInternalServerError,
						code: "internal_panic", msg: "internal error"})
				}
			}
			if rec.status == 0 {
				rec.status = http.StatusOK
			}
			if c := g.responses[rec.status/100]; c != nil {
				c.Inc()
			}
			dur := time.Since(t0)
			g.latency.Observe(int64(dur))
			sp.SetAttr("status", strconv.Itoa(rec.status))
			sp.End()
			g.logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
				slog.String("id", id),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", rec.status),
				slog.Duration("dur", dur))
		}()
		next.ServeHTTP(rec, r)
	})
}

// gwError is an error with an HTTP mapping, mirroring the shard daemon's
// response shape so clients cannot tell a gateway rejection from a shard
// one.
type gwError struct {
	status     int
	code       string
	msg        string
	retryAfter time.Duration
}

func (e *gwError) Error() string { return e.msg }

func (g *Gateway) writeError(w http.ResponseWriter, err error) {
	var ge *gwError
	var ae *client.APIError
	switch {
	case errors.As(err, &ge):
	case errors.As(err, &ae):
		// Pass an upstream rejection through unchanged: same status,
		// code, message and Retry-After hint the shard produced.
		ge = &gwError{status: ae.Status, code: ae.Code, msg: ae.Message}
		if ae.HasRetryAfter {
			ge.retryAfter = ae.RetryAfter
		}
	case errors.Is(err, resilience.ErrOpen):
		ge = &gwError{status: http.StatusServiceUnavailable, code: "all_shards_unavailable",
			msg: "no shard available (circuits open); retry later"}
		var oe *resilience.OpenError
		if errors.As(err, &oe) {
			ge.retryAfter = oe.RetryIn
		}
	case errors.Is(err, context.DeadlineExceeded):
		ge = &gwError{status: http.StatusGatewayTimeout, code: "deadline_exceeded",
			msg: "request deadline exceeded"}
	case errors.Is(err, context.Canceled):
		ge = &gwError{status: 499, code: "canceled", msg: "request canceled"}
	default:
		ge = &gwError{status: http.StatusBadGateway, code: "upstream_error", msg: err.Error()}
	}
	if ge.retryAfter > 0 {
		secs := int((ge.retryAfter + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(ge.status)
	json.NewEncoder(w).Encode(serve.ErrorBody{ //nolint:errcheck // best-effort error body
		Error: serve.ErrorDetail{Code: ge.code, Message: ge.msg},
	})
}

func (g *Gateway) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		g.logger.Error("encoding response", "err", err)
	}
}

func badRequest(format string, args ...any) *gwError {
	return &gwError{status: http.StatusBadRequest, code: "invalid_request",
		msg: fmt.Sprintf(format, args...)}
}

// beginSim is the shared front door of the proxied simulation endpoints:
// method check, drain check, bounded body read, strict decode. It returns
// the raw body — the async job path forwards it to the owning shard
// verbatim, so the shard's content-addressed JobID matches the gateway's
// routing address — and false after writing the error response itself.
func (g *Gateway) beginSim(w http.ResponseWriter, r *http.Request, into any) ([]byte, bool) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		g.writeError(w, &gwError{status: http.StatusMethodNotAllowed,
			code: "method_not_allowed", msg: "use " + http.MethodPost})
		return nil, false
	}
	if g.draining.Load() {
		g.writeError(w, &gwError{status: http.StatusServiceUnavailable,
			code: "draining", msg: "gateway is draining; not accepting new simulations"})
		return nil, false
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.opts.MaxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			g.writeError(w, &gwError{status: http.StatusRequestEntityTooLarge,
				code: "body_too_large",
				msg:  fmt.Sprintf("request body exceeds %d bytes", g.opts.MaxBodyBytes)})
		} else {
			g.writeError(w, badRequest("reading request body: %v", err))
		}
		return nil, false
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		g.writeError(w, badRequest("decoding request: %v", err))
		return nil, false
	}
	return body, true
}

func (g *Gateway) requestContext(r *http.Request, timeoutMs int) (context.Context, context.CancelFunc) {
	d := g.opts.DefaultTimeout
	if timeoutMs > 0 {
		d = time.Duration(timeoutMs) * time.Millisecond
	}
	if d > g.opts.MaxTimeout {
		d = g.opts.MaxTimeout
	}
	return context.WithTimeout(r.Context(), d)
}

// --- passthrough endpoints ---

func (g *Gateway) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

func (g *Gateway) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if g.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "draining\n")
		return
	}
	for _, sh := range g.shards {
		if sh.brk.State() != resilience.Open {
			io.WriteString(w, "ready\n")
			return
		}
	}
	w.WriteHeader(http.StatusServiceUnavailable)
	io.WriteString(w, "degraded: all shard circuits open\n")
}

func (g *Gateway) handleVersion(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		g.writeError(w, &gwError{status: http.StatusMethodNotAllowed,
			code: "method_not_allowed", msg: "use GET"})
		return
	}
	g.writeJSON(w, buildinfo.Get())
}

func (g *Gateway) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		g.writeError(w, &gwError{status: http.StatusMethodNotAllowed,
			code: "method_not_allowed", msg: "use GET"})
		return
	}
	// serve.Benchmarks is shared with the shard handler, so the listing
	// is byte-identical no matter which tier answers.
	g.writeJSON(w, serve.Benchmarks())
}

func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		g.writeError(w, &gwError{status: http.StatusMethodNotAllowed,
			code: "method_not_allowed", msg: "use GET"})
		return
	}
	g.writeJSON(w, g.reg.Snapshot())
}

// handleDebugTrace mirrors the shard daemons' /debug/trace on the gateway:
// the whole buffer as Chrome trace_event JSON, or one trace's raw spans as
// a stats.TraceSet with ?trace=<id>. The stitched cluster-wide view lives
// at /v1/cluster/trace/<id>.
func (g *Gateway) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		g.writeError(w, &gwError{status: http.StatusMethodNotAllowed,
			code: "method_not_allowed", msg: "use GET"})
		return
	}
	if q := r.URL.Query().Get("trace"); q != "" {
		id, err := stats.ParseTraceID(q)
		if err != nil {
			g.writeError(w, badRequest("trace parameter: %v", err))
			return
		}
		g.writeJSON(w, g.tracer.TraceSet("", id))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := g.tracer.WriteChromeTrace(w); err != nil {
		g.logger.Error("trace export", "err", err)
	}
}

// RingInfo is the body of GET /v1/ring: the cluster topology as the
// gateway sees it.
type RingInfo struct {
	VNodes int         `json:"vnodes"`
	Shards []ShardInfo `json:"shards"`
}

// ShardInfo is one ring member and its router-side circuit state.
type ShardInfo struct {
	Name    string `json:"name"`
	Breaker string `json:"breaker"`
}

func (g *Gateway) handleRing(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		g.writeError(w, &gwError{status: http.StatusMethodNotAllowed,
			code: "method_not_allowed", msg: "use GET"})
		return
	}
	info := RingInfo{VNodes: g.opts.VNodes}
	for _, sh := range g.shards {
		info.Shards = append(info.Shards, ShardInfo{
			Name:    sh.name,
			Breaker: sh.brk.State().String(),
		})
	}
	g.writeJSON(w, info)
}

// --- simulate routing ---

// simResult is one successfully proxied simulation: the shard's exact
// served bytes plus enough header state to reproduce them.
type simResult struct {
	body    []byte
	outcome client.CacheOutcome
	shard   *shard
}

func (g *Gateway) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req serve.SimulateRequest
	if _, ok := g.beginSim(w, r, &req); !ok {
		return
	}
	key, err := serve.CanonicalKey(req)
	if err != nil {
		g.writeError(w, badRequest("%v", err))
		return
	}
	ctx, cancel := g.requestContext(r, req.TimeoutMs)
	defer cancel()

	if r.Header.Get(serve.CacheOnlyHeader) != "" {
		// A probe stays a probe: ask only the owner, never compute.
		g.routeProbe(ctx, w, req, key)
		return
	}

	res, err := g.fetchSim(ctx, req, key)
	if err != nil {
		g.writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Tcord-Cache", string(res.outcome))
	if res.outcome == "stale" {
		w.Header().Set("Warning", `110 tcord "response is stale"`)
	}
	w.Header().Set(serve.ShardHeader, res.shard.name)
	w.Write(res.body) //nolint:errcheck // client gone is its own problem
}

// routeProbe forwards a cache-only probe to the key's owner.
func (g *Gateway) routeProbe(ctx context.Context, w http.ResponseWriter, req serve.SimulateRequest, key string) {
	owner := g.shards[g.ring.Owner(key)]
	sp, ctx := stats.StartSpan(ctx, "gw.probe", "cluster")
	sp.SetAttr("shard", "shard-"+strconv.Itoa(owner.idx))
	body, outcome, ok, err := owner.client.CacheProbe(ctx, req)
	sp.SetAttr("hit", strconv.FormatBool(err == nil && ok))
	sp.End()
	if err != nil {
		g.writeError(w, err)
		return
	}
	if !ok {
		g.writeError(w, &gwError{status: http.StatusNotFound,
			code: "cache_miss", msg: "result not cached"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Tcord-Cache", string(outcome))
	if outcome == "stale" {
		w.Header().Set("Warning", `110 tcord "response is stale"`)
	}
	w.Header().Set(serve.ShardHeader, owner.name)
	w.Write(body) //nolint:errcheck
}

// fetchSim serves one simulation through the ring: the owner first,
// hedged onto the next shard when the owner is slower than the hedge
// delay, failed over along the ring (with a peer cache probe back to the
// owner) when an attempt errors. The first success wins; an attempt is
// only counted against a shard's breaker when it actually reached it.
func (g *Gateway) fetchSim(ctx context.Context, req serve.SimulateRequest, key string) (simResult, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	order := g.ring.Successors(key)
	owner := g.shards[order[0]]

	type attemptOut struct {
		res    simResult
		err    error
		hedged bool
	}
	results := make(chan attemptOut, len(order))
	next, pending, attempt := 0, 0, 0
	var lastOpen error
	// launch starts the next candidate whose breaker admits it; failover
	// marks attempts triggered by a predecessor's failure (they may be
	// answered from the owner's cache), hedged marks latency hedges.
	launch := func(failover, hedged bool) bool {
		for next < len(order) {
			sh := g.shards[order[next]]
			next++
			done, err := sh.brk.Allow()
			if err != nil {
				lastOpen = err
				continue
			}
			n := attempt
			attempt++
			pending++
			go func() {
				res, err := g.attemptSim(ctx, sh, owner, req, n, failover, hedged, done)
				results <- attemptOut{res: res, err: err, hedged: hedged}
			}()
			return true
		}
		return false
	}
	if !launch(false, false) {
		return simResult{}, lastOpen
	}
	var hedgeTimer <-chan time.Time
	if d := g.hedgeDelay(); d > 0 && len(order) > 1 {
		hedgeTimer = time.After(d)
	}
	var firstErr error
	for {
		select {
		case o := <-results:
			pending--
			if o.err == nil {
				if o.hedged {
					g.hedgeWins.Inc()
				}
				return o.res, nil
			}
			if firstErr == nil {
				firstErr = o.err
			}
			if launch(true, false) {
				g.failovers.Inc()
				continue
			}
			if pending == 0 {
				return simResult{}, firstErr
			}
		case <-hedgeTimer:
			hedgeTimer = nil
			if launch(false, true) {
				g.hedges.Inc()
			}
		case <-ctx.Done():
			return simResult{}, ctx.Err()
		}
	}
}

// attemptSim is one upstream try, recorded as a gw.attempt child span of
// the request's root — the span whose identity the shard call carries in
// its traceparent header, so the shard's own spans stitch under it. On a
// failover attempt to a non-owner, the owner's cache is probed first: a
// shard whose compute path is broken (breaker open, serving bounded-stale)
// still answers probes, and a dead one fails them fast — either way a
// failover shard never recomputes a result the cluster already holds.
func (g *Gateway) attemptSim(ctx context.Context, sh, owner *shard, req serve.SimulateRequest, attempt int, failover, hedged bool, done func(error)) (simResult, error) {
	sp, sctx := stats.StartSpan(ctx, "gw.attempt", "cluster")
	sp.SetAttr("shard", "shard-"+strconv.Itoa(sh.idx))
	sp.SetAttr("attempt", strconv.Itoa(attempt))
	if failover {
		sp.SetAttr("failover", "true")
	}
	if hedged {
		sp.SetAttr("hedged", "true")
	}
	res, err := g.attemptSimSpanned(sctx, sh, owner, req, failover, sp, done)
	sp.SetAttr("outcome", attemptOutcome(ctx, err))
	sp.End()
	return res, err
}

// attemptOutcome labels an attempt span's result. A hedge loser — its
// sibling won and fetchSim canceled the race context — is "cancelled", the
// shape the stitched export shows for work the gateway deliberately
// abandoned; everything else is "ok", "deadline" or "error".
func attemptOutcome(ctx context.Context, err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, context.Canceled), errors.Is(ctx.Err(), context.Canceled):
		return "cancelled"
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	default:
		return "error"
	}
}

func (g *Gateway) attemptSimSpanned(ctx context.Context, sh, owner *shard, req serve.SimulateRequest, failover bool, sp *stats.Span, done func(error)) (simResult, error) {
	if err := g.chaos.Inject(ctx, resilience.SiteProxy); err != nil {
		done(resilience.Ignore) // injected at the gateway, not the shard's fault
		return simResult{}, err
	}
	if failover && sh != owner {
		psp, pctx := stats.StartSpan(ctx, "gw.probe", "cluster")
		psp.SetAttr("shard", "shard-"+strconv.Itoa(owner.idx))
		pctx, pcancel := context.WithTimeout(pctx, g.opts.ProbeTimeout)
		body, outcome, ok, err := owner.client.CacheProbe(pctx, req)
		pcancel()
		psp.SetAttr("hit", strconv.FormatBool(err == nil && ok))
		psp.End()
		if err == nil && ok {
			g.probeHits.Inc()
			sp.SetAttr("probeHit", "true")
			done(resilience.Ignore) // sh itself was never called
			return simResult{body: body, outcome: outcome, shard: owner}, nil
		}
	}
	t0 := time.Now()
	body, outcome, err := sh.client.SimulateRaw(ctx, req)
	done(shardOutcome(err))
	if err != nil {
		return simResult{}, err
	}
	g.proxyDur.Observe(int64(time.Since(t0)))
	return simResult{body: body, outcome: outcome, shard: sh}, nil
}

// shardOutcome classifies an upstream error for the shard's breaker: only
// path failures (transport errors, 5xx) count against it. Rejections the
// shard meant (4xx, including queue-full 429s) and cancellations say
// nothing about its health.
func shardOutcome(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return resilience.Ignore
	}
	var ae *client.APIError
	if errors.As(err, &ae) && ae.Status < 500 {
		return resilience.Ignore
	}
	return err
}

// hedgeDelay resolves the current hedge delay: fixed when configured,
// adaptive (observed p99 of proxied simulate latency, floored at
// MinHedge) by default, zero = hedging off for this request.
func (g *Gateway) hedgeDelay() time.Duration {
	switch {
	case g.opts.HedgeAfter < 0:
		return 0
	case g.opts.HedgeAfter > 0:
		return g.opts.HedgeAfter
	}
	snap := g.proxyDur.Snapshot()
	if snap.Count < HedgeWarmup {
		return 0
	}
	d := time.Duration(snap.Quantile(0.99))
	if d < g.opts.MinHedge {
		d = g.opts.MinHedge
	}
	return d
}

// --- arena routing ---

// handleArena proxies a replacement-policy race to the shard owning its
// content address, failing over along the ring when a shard errors. Reports
// are byte-identical on every shard (the race is deterministic and every
// daemon pins the same single-frame geometry), so failover never changes a
// number — only which shard's arena cache warms up. No hedging: a race is
// orders of magnitude heavier than a simulate call, and doubling one
// deliberately is the wrong trade.
func (g *Gateway) handleArena(w http.ResponseWriter, r *http.Request) {
	var req serve.ArenaRequest
	body, ok := g.beginSim(w, r, &req)
	if !ok {
		return
	}
	_, key, err := serve.ArenaKey(req)
	if err != nil {
		g.writeError(w, badRequest("%v", err))
		return
	}
	if serve.AsyncRequested(r) {
		g.routeJobSubmit(w, r, serve.JobKindArena, body)
		return
	}
	ctx, cancel := g.requestContext(r, req.TimeoutMs)
	defer cancel()

	var firstErr error
	for attempt, idx := range g.ring.Successors(key) {
		sh := g.shards[idx]
		done, allowErr := sh.brk.Allow()
		if allowErr != nil {
			if firstErr == nil {
				firstErr = allowErr
			}
			continue
		}
		sp, actx := stats.StartSpan(ctx, "gw.attempt", "cluster")
		sp.SetAttr("shard", "shard-"+strconv.Itoa(sh.idx))
		sp.SetAttr("attempt", strconv.Itoa(attempt))
		if attempt > 0 {
			sp.SetAttr("failover", "true")
		}
		if err := g.chaos.Inject(actx, resilience.SiteProxy); err != nil {
			done(resilience.Ignore) // injected at the gateway, not the shard's fault
			sp.SetAttr("outcome", attemptOutcome(ctx, err))
			sp.End()
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		body, outcome, err := sh.client.ArenaRaw(actx, req)
		done(shardOutcome(err))
		sp.SetAttr("outcome", attemptOutcome(ctx, err))
		sp.End()
		if err == nil {
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("X-Tcord-Cache", string(outcome))
			w.Header().Set(serve.ShardHeader, sh.name)
			w.Write(body) //nolint:errcheck // client gone is its own problem
			return
		}
		// A 4xx is the shard rejecting the request itself — every shard
		// would; pass it through instead of burning the ring.
		var ae *client.APIError
		if errors.As(err, &ae) && ae.Status < 500 && ae.Status != http.StatusTooManyRequests {
			g.writeError(w, err)
			return
		}
		if firstErr == nil {
			firstErr = err
		}
		g.failovers.Inc()
		if ctx.Err() != nil {
			break
		}
	}
	g.writeError(w, firstErr)
}

// --- sweep fan-out ---

func (g *Gateway) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req serve.SweepRequest
	body, ok := g.beginSim(w, r, &req)
	if !ok {
		return
	}
	if len(req.Items) == 0 {
		g.writeError(w, badRequest("sweep needs at least one item"))
		return
	}
	if len(req.Items) > g.opts.MaxSweepItems {
		g.writeError(w, badRequest("sweep has %d items; the gateway limit is %d",
			len(req.Items), g.opts.MaxSweepItems))
		return
	}
	keys := make([]string, len(req.Items))
	var timeoutMs int
	for i, item := range req.Items {
		key, err := serve.CanonicalKey(item)
		if err != nil {
			g.writeError(w, badRequest("item %d: %v", i, err))
			return
		}
		keys[i] = key
		if item.TimeoutMs > timeoutMs {
			timeoutMs = item.TimeoutMs
		}
	}
	if serve.AsyncRequested(r) {
		g.routeJobSubmit(w, r, serve.JobKindSweep, body)
		return
	}
	ctx, cancel := g.requestContext(r, timeoutMs)
	defer cancel()

	runs, anyStale, err := g.fanOutSweep(ctx, req.Items, keys)
	if err != nil {
		g.writeError(w, err)
		return
	}
	if anyStale {
		w.Header().Set("Warning", `110 tcord "response includes stale items"`)
	}
	g.writeJSON(w, serve.SweepResponse{Runs: runs})
}

// sweepChunk is one sub-sweep: a run of same-owner items, at most
// ShardSweepItems long, remembering each item's global index.
type sweepChunk struct {
	ownerIdx int
	global   []int
}

// fanOutSweep distributes items across their owning shards as sub-sweeps
// and reassembles the runs in global item order. A failed sub-sweep —
// shard death mid-sweep included — degrades to item-by-item routing with
// full failover, so a sweep only fails when an item is unservable by
// every shard (or genuinely invalid).
func (g *Gateway) fanOutSweep(ctx context.Context, items []serve.SimulateRequest, keys []string) ([]json.RawMessage, bool, error) {
	// Group by owner, preserving item order within each owner.
	byOwner := make(map[int][]int)
	for i, key := range keys {
		o := g.ring.Owner(key)
		byOwner[o] = append(byOwner[o], i)
	}
	var chunks []sweepChunk
	for o, globals := range byOwner {
		for len(globals) > 0 {
			n := len(globals)
			if n > g.opts.ShardSweepItems {
				n = g.opts.ShardSweepItems
			}
			chunks = append(chunks, sweepChunk{ownerIdx: o, global: globals[:n]})
			globals = globals[n:]
		}
	}

	runs := make([]json.RawMessage, len(items))
	var anyStale atomic.Bool
	var mu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	for _, ch := range chunks {
		wg.Add(1)
		go func(ch sweepChunk) {
			defer wg.Done()
			sub := make([]serve.SimulateRequest, len(ch.global))
			for i, gi := range ch.global {
				sub[i] = items[gi]
			}
			got, hdr, err := g.trySubSweep(ctx, g.shards[ch.ownerIdx], sub)
			if err == nil && len(got) != len(sub) {
				err = fmt.Errorf("cluster: shard %s returned %d runs for %d items",
					g.shards[ch.ownerIdx].name, len(got), len(sub))
			}
			if err == nil {
				for i, gi := range ch.global {
					runs[gi] = got[i]
				}
				if hdr.Get("Warning") != "" {
					anyStale.Store(true)
				}
				return
			}
			// The sub-sweep died (shard killed mid-sweep, breaker open,
			// chaos fault). Recover item by item through the full
			// hedge/failover path.
			for i, gi := range ch.global {
				g.fallback.Inc()
				res, err := g.fetchSim(ctx, sub[i], keys[gi])
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("item %d: %w", gi, err)
					}
					mu.Unlock()
					return
				}
				// Simulate bodies end in the canonical newline; runs
				// embed without it, exactly as the shard's own sweep
				// handler trims.
				runs[gi] = json.RawMessage(string(res.body[:len(res.body)-1]))
				if res.outcome == "stale" {
					anyStale.Store(true)
				}
			}
		}(ch)
	}
	wg.Wait()
	if firstErr != nil {
		var ge *gwError
		var ae *client.APIError
		if errors.As(firstErr, &ge) || errors.As(firstErr, &ae) {
			return nil, false, firstErr
		}
		return nil, false, fmt.Errorf("cluster: sweep failed: %w", firstErr)
	}
	return runs, anyStale.Load(), nil
}

// trySubSweep sends one sub-sweep to its owner under the shard's breaker,
// as a gw.subsweep child span carrying the chunk size — the span whose
// traceparent the shard's own sweep spans stitch under.
func (g *Gateway) trySubSweep(ctx context.Context, sh *shard, items []serve.SimulateRequest) ([]json.RawMessage, http.Header, error) {
	sp, sctx := stats.StartSpan(ctx, "gw.subsweep", "cluster")
	sp.SetAttr("shard", "shard-"+strconv.Itoa(sh.idx))
	sp.SetAttr("items", strconv.Itoa(len(items)))
	got, hdr, err := g.trySubSweepSpanned(sctx, sh, items)
	sp.SetAttr("outcome", attemptOutcome(ctx, err))
	sp.End()
	return got, hdr, err
}

func (g *Gateway) trySubSweepSpanned(ctx context.Context, sh *shard, items []serve.SimulateRequest) ([]json.RawMessage, http.Header, error) {
	done, err := sh.brk.Allow()
	if err != nil {
		return nil, nil, err
	}
	if err := g.chaos.Inject(ctx, resilience.SiteProxy); err != nil {
		done(resilience.Ignore)
		return nil, nil, err
	}
	got, hdr, err := sh.client.SweepRaw(ctx, serve.SweepRequest{Items: items})
	done(shardOutcome(err))
	return got, hdr, err
}
