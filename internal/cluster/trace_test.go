package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"tcor/internal/resilience"
	"tcor/internal/serve"
	"tcor/internal/stats"
)

// getStitched polls GET /v1/cluster/trace/<id> until ready(doc) holds and
// two consecutive fetches return identical bytes. Spans land in each
// process's tracer just after the response that created them is flushed,
// so the set settles moments after the traced request returns; the
// two-fetch equality doubles as the determinism check — stitching the same
// span sets twice must be byte-identical.
func getStitched(t *testing.T, gwURL, id string, ready func(clusterTraceDoc) bool) (http.Header, []byte) {
	t.Helper()
	var prev []byte
	prevOK := false
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(gwURL + "/v1/cluster/trace/" + id)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("stitched trace: status %d: %s", resp.StatusCode, body)
		}
		var doc clusterTraceDoc
		if err := json.Unmarshal(body, &doc); err != nil {
			t.Fatalf("decoding stitched export: %v\n%s", err, body)
		}
		ok := ready == nil || ready(doc)
		if ok && prevOK && bytes.Equal(prev, body) {
			return resp.Header, body
		}
		prev, prevOK = body, ok
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatal("stitched trace never stabilized")
	return nil, nil
}

// pidsWithSpans returns the set of pids contributing at least one span
// ("X" event) to the export.
func pidsWithSpans(doc clusterTraceDoc) map[int]bool {
	pids := make(map[int]bool)
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			pids[ev.Pid] = true
		}
	}
	return pids
}

// TestStitchedSweepTraceGolden is the trace collector's contract: one
// fanned-out sweep yields ONE stitched export with a track per
// participating process, every shard's root span hanging off the gateway
// gw.subsweep span that issued its sub-sweep, causally ordered, and the
// whole document byte-stable across repeated stitches.
func TestStitchedSweepTraceGolden(t *testing.T) {
	rc := newRealCluster(t, 3, serve.Options{}, Options{})
	sweep := goldenSweep()
	status, hdr, body := post(t, rc.gwURL, "/v1/sweep", sweep)
	if status != http.StatusOK {
		t.Fatalf("sweep: status %d: %s", status, body)
	}
	tc, ok := stats.ExtractTraceparent(hdr)
	if !ok {
		t.Fatal("sweep response carries no traceparent header")
	}
	id := tc.TraceID.String()

	// Expected tracks: the gateway plus every shard owning a sweep item.
	wantPids := map[int]bool{0: true}
	for _, item := range sweep.Items {
		key, err := serve.CanonicalKey(item)
		if err != nil {
			t.Fatal(err)
		}
		wantPids[rc.gateway.Ring().Owner(key)+1] = true
	}

	ready := func(doc clusterTraceDoc) bool {
		got := pidsWithSpans(doc)
		for pid := range wantPids {
			if !got[pid] {
				return false
			}
		}
		return true
	}
	shdr, raw := getStitched(t, rc.gwURL, id, ready)
	if w := shdr.Get("Warning"); w != "" {
		t.Fatalf("complete stitch flagged partial: %q", w)
	}
	var doc clusterTraceDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.OtherData["traceId"] != id {
		t.Fatalf("otherData.traceId = %q, want %q", doc.OtherData["traceId"], id)
	}
	for i := 0; i < 3; i++ {
		if st := doc.OtherData["shard-"+strconv.Itoa(i)]; st != "ok" {
			t.Fatalf("shard-%d collection status %q, want ok", i, st)
		}
	}

	procs := make(map[int]string)
	spans := make(map[int][]traceEvent)
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" {
			procs[ev.Pid] = ev.Args["name"]
			continue
		}
		spans[ev.Pid] = append(spans[ev.Pid], ev)
	}
	if procs[0] != "gateway" {
		t.Fatalf("pid 0 is named %q, want gateway", procs[0])
	}
	for pid := range wantPids {
		if pid == 0 {
			continue
		}
		if got, want := procs[pid], "shard-"+strconv.Itoa(pid-1); got != want {
			t.Errorf("pid %d track is named %q, want %q", pid, got, want)
		}
		if len(spans[pid]) == 0 {
			t.Errorf("shard-%d owns sweep items but contributed no spans", pid-1)
		}
	}

	// Gateway side: the sweep's root span, gw.subsweep children under it.
	gwName := make(map[string]string)
	gwTs := make(map[string]float64)
	var rootID string
	for _, ev := range spans[0] {
		gwName[ev.Args["spanId"]] = ev.Name
		gwTs[ev.Args["spanId"]] = ev.Ts
		if ev.Name == "http.request" && ev.Args["path"] == "/v1/sweep" {
			rootID = ev.Args["spanId"]
		}
	}
	if rootID == "" {
		t.Fatal("stitched export has no gateway root span for /v1/sweep")
	}
	subsweeps := 0
	for _, ev := range spans[0] {
		if ev.Name != "gw.subsweep" {
			continue
		}
		subsweeps++
		if ev.Args["parentSpanId"] != rootID {
			t.Errorf("gw.subsweep %s has parent %q, want the root %s",
				ev.Args["spanId"], ev.Args["parentSpanId"], rootID)
		}
	}
	if subsweeps == 0 {
		t.Fatal("stitched export has no gw.subsweep spans")
	}

	// Cross-process links: every shard http.request span hangs off a
	// gateway gw.subsweep span and never starts before it (skew-corrected).
	linked := 0
	for pid, evs := range spans {
		if pid == 0 {
			continue
		}
		for _, ev := range evs {
			if ev.Name != "http.request" {
				continue
			}
			parent := ev.Args["parentSpanId"]
			name, ok := gwName[parent]
			if !ok {
				t.Errorf("pid %d span %s: parent %q is not a gateway span",
					pid, ev.Args["spanId"], parent)
				continue
			}
			if name != "gw.subsweep" {
				t.Errorf("pid %d span %s hangs off %q, want gw.subsweep",
					pid, ev.Args["spanId"], name)
			}
			if ev.Ts < gwTs[parent] {
				t.Errorf("pid %d span %s starts %.1fus before its parent despite skew correction",
					pid, ev.Args["spanId"], gwTs[parent]-ev.Ts)
			}
			linked++
		}
	}
	if linked == 0 {
		t.Fatal("stitched export has no cross-process parent links")
	}

	// Byte stability: a further stitch of the same span sets is identical.
	resp, err := http.Get(rc.gwURL + "/v1/cluster/trace/" + id)
	if err != nil {
		t.Fatal(err)
	}
	again, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, raw) {
		t.Fatal("stitching the same trace twice produced different bytes")
	}
}

// attemptLog records the correlation headers each scripted shard observed,
// keyed by shard URL.
type attemptLog struct {
	mu  sync.Mutex
	ids map[string][]string // X-Request-Id per attempt
	tps map[string][]string // traceparent per attempt
}

func newAttemptLog() *attemptLog {
	return &attemptLog{ids: make(map[string][]string), tps: make(map[string][]string)}
}

func (l *attemptLog) record(u string, r *http.Request) {
	l.mu.Lock()
	l.ids[u] = append(l.ids[u], r.Header.Get(serve.RequestIDHeader))
	l.tps[u] = append(l.tps[u], r.Header.Get(stats.TraceparentHeader))
	l.mu.Unlock()
}

// waitFor blocks until shard u has observed at least n attempts (the
// abandoned side of a hedge is recorded on its handler's way in, a moment
// after the winner's response already returned).
func (l *attemptLog) waitFor(t *testing.T, u string, n int) (ids, tps []string) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		l.mu.Lock()
		if len(l.ids[u]) >= n {
			ids = append([]string(nil), l.ids[u]...)
			tps = append([]string(nil), l.tps[u]...)
			l.mu.Unlock()
			return ids, tps
		}
		l.mu.Unlock()
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("shard %s never saw %d attempt(s)", u, n)
	return nil, nil
}

func postSimWithHeaders(t *testing.T, url string, req serve.SimulateRequest, h http.Header) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, url+"/v1/simulate", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	for k, vs := range h {
		hreq.Header[k] = vs
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// checkAttempts asserts every recorded attempt against shard u carried the
// caller's request ID and a child span of the response's trace, and
// returns the attempts' span IDs.
func checkAttempts(t *testing.T, u string, ids, tps []string, wantID string, root stats.TraceContext) []string {
	t.Helper()
	for _, id := range ids {
		if id != wantID {
			t.Errorf("shard %s saw request ID %q, want %q", u, id, wantID)
		}
	}
	var spanIDs []string
	for _, tp := range tps {
		tc, err := stats.ParseTraceparent(tp)
		if err != nil {
			t.Errorf("shard %s saw traceparent %q: %v", u, tp, err)
			continue
		}
		if tc.TraceID != root.TraceID {
			t.Errorf("shard %s attempt is on trace %s, want %s", u, tc.TraceID, root.TraceID)
		}
		if tc.SpanID == root.SpanID {
			t.Errorf("shard %s attempt reused the root span ID; want one child span per attempt", u)
		}
		spanIDs = append(spanIDs, tc.SpanID.String())
	}
	return spanIDs
}

// TestRequestIDAndTraceSurviveHedgeAndFailover: the caller's X-Request-Id
// rides along on every upstream attempt — the winner, the abandoned hedge
// loser and the failover chain's probes included — and each attempt
// carries its own child span of the request's one trace.
func TestRequestIDAndTraceSurviveHedgeAndFailover(t *testing.T) {
	t.Run("hedge", func(t *testing.T) {
		fc := newFakeCluster(t, 2)
		opts := singleAttempt()
		opts.HedgeAfter = 20 * time.Millisecond
		g, srv := newTestGateway(t, fc, opts)
		order := ownerOf(t, g, testSim)
		log := newAttemptLog()
		fc.setRole(order[0], func(w http.ResponseWriter, r *http.Request) {
			log.record(order[0], r)
			time.Sleep(400 * time.Millisecond)
			answer("{\"from\":\"slow\"}\n", "miss")(w, r)
		})
		fc.setRole(order[1], func(w http.ResponseWriter, r *http.Request) {
			log.record(order[1], r)
			answer("{\"from\":\"fast\"}\n", "hit")(w, r)
		})

		const rid = "ride-along-7"
		resp := postSimWithHeaders(t, srv.URL, testSim,
			http.Header{serve.RequestIDHeader: []string{rid}})
		body := readBody(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("hedged request: status %d: %s", resp.StatusCode, body)
		}
		if got := resp.Header.Get(serve.RequestIDHeader); got != rid {
			t.Fatalf("response echoes request ID %q, want %q", got, rid)
		}
		root, ok := stats.ExtractTraceparent(resp.Header)
		if !ok {
			t.Fatal("response carries no traceparent")
		}

		var spanIDs []string
		for _, u := range order {
			ids, tps := log.waitFor(t, u, 1)
			spanIDs = append(spanIDs, checkAttempts(t, u, ids, tps, rid, root)...)
		}
		if len(spanIDs) == 2 && spanIDs[0] == spanIDs[1] {
			t.Error("hedged attempts share one span ID; want a distinct child span per attempt")
		}
	})

	t.Run("failover", func(t *testing.T) {
		fc := newFakeCluster(t, 2)
		g, srv := newTestGateway(t, fc, singleAttempt())
		order := ownerOf(t, g, testSim)
		log := newAttemptLog()
		fc.setRole(order[0], func(w http.ResponseWriter, r *http.Request) {
			log.record(order[0], r)
			fail(http.StatusInternalServerError, "internal")(w, r)
		})
		fc.setRole(order[1], func(w http.ResponseWriter, r *http.Request) {
			log.record(order[1], r)
			answer("{\"from\":\"recomputed\"}\n", "miss")(w, r)
		})

		const rid = "ride-along-8"
		resp := postSimWithHeaders(t, srv.URL, testSim,
			http.Header{serve.RequestIDHeader: []string{rid}})
		body := readBody(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("failover request: status %d: %s", resp.StatusCode, body)
		}
		root, ok := stats.ExtractTraceparent(resp.Header)
		if !ok {
			t.Fatal("response carries no traceparent")
		}

		// The owner sees two requests — the failed attempt and the failover
		// path's cache probe — the successor one; each under the same ID and
		// trace.
		ids, tps := log.waitFor(t, order[0], 2)
		checkAttempts(t, order[0], ids, tps, rid, root)
		ids, tps = log.waitFor(t, order[1], 1)
		checkAttempts(t, order[1], ids, tps, rid, root)
	})
}

// emptyTraceRole wraps a scripted shard handler so /debug/trace answers a
// valid empty span set (fake shards have no tracer to dump).
func emptyTraceRole(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/debug/trace") {
			w.Header().Set("Content-Type", "application/json")
			io.WriteString(w, "{\"spans\":[]}\n")
			return
		}
		next(w, r)
	}
}

// TestStitchedHedgeLoserCancelled: the losing side of a hedge — abandoned
// when the winner's response came back — shows up in the stitched export
// as a gw.attempt span with outcome=cancelled, next to the hedged winner's
// outcome=ok span.
func TestStitchedHedgeLoserCancelled(t *testing.T) {
	fc := newFakeCluster(t, 2)
	opts := singleAttempt()
	opts.HedgeAfter = 20 * time.Millisecond
	g, srv := newTestGateway(t, fc, opts)
	order := ownerOf(t, g, testSim)
	fc.setRole(order[0], emptyTraceRole(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(400 * time.Millisecond)
		answer("{\"from\":\"slow\"}\n", "miss")(w, r)
	}))
	fc.setRole(order[1], emptyTraceRole(answer("{\"from\":\"fast\"}\n", "hit")))

	resp := postSim(t, srv.URL, testSim)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hedged request: status %d: %s", resp.StatusCode, body)
	}
	tc, ok := stats.ExtractTraceparent(resp.Header)
	if !ok {
		t.Fatal("response carries no traceparent")
	}

	// The loser's span only lands once fetchSim cancels the race context.
	ready := func(doc clusterTraceDoc) bool {
		for _, ev := range doc.TraceEvents {
			if ev.Name == "gw.attempt" && ev.Args["outcome"] == "cancelled" {
				return true
			}
		}
		return false
	}
	_, raw := getStitched(t, srv.URL, tc.TraceID.String(), ready)
	var doc clusterTraceDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	var cancelled, hedgedWin bool
	for _, ev := range doc.TraceEvents {
		if ev.Name != "gw.attempt" {
			continue
		}
		switch ev.Args["outcome"] {
		case "cancelled":
			if ev.Args["hedged"] == "true" {
				t.Error("the hedge target was cancelled; expected the slow owner to lose")
			}
			cancelled = true
		case "ok":
			if ev.Args["hedged"] == "true" {
				hedgedWin = true
			}
		}
	}
	if !cancelled || !hedgedWin {
		t.Fatalf("stitched export: cancelled loser=%v, hedged winner=%v; want both", cancelled, hedgedWin)
	}
	_ = g
}

// TestStitchedChaosHedgeExport is the acceptance scenario end to end:
// three real shards under latency chaos behind a hedging gateway, and the
// first hedged request whose loser was cancelled yields one stitched
// export carrying the cancelled gw.attempt span plus linked spans from
// more than one process.
func TestStitchedChaosHedgeExport(t *testing.T) {
	shardOpts := func(seed int64) serve.Options {
		inj := resilience.NewInjector(seed)
		inj.Arm(resilience.SiteHTTP, resilience.FaultPlan{Rate: 0.4, Latency: 300 * time.Millisecond})
		return serve.Options{Chaos: inj}
	}
	var urls []string
	for i := 0; i < 3; i++ {
		srv := httptest.NewServer(serve.NewServer(shardOpts(int64(7 + i))).Handler())
		t.Cleanup(srv.Close)
		urls = append(urls, srv.URL)
	}
	g, err := NewGateway(Options{
		Shards:     urls,
		HedgeAfter: 25 * time.Millisecond,
		Retry:      &resilience.RetryPolicy{MaxAttempts: 1},
		// The latency faults are on purpose; keep breakers out of the way.
		Breaker: &resilience.BreakerConfig{Window: 64, MinSamples: 64, Cooldown: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	gwSrv := httptest.NewServer(g.Handler())
	defer gwSrv.Close()

	var traceID string
	var lastHedges int64
	for i := 0; i < 60 && traceID == ""; i++ {
		req := testSim
		req.TileCacheKB = 32 + i
		resp := postSim(t, gwSrv.URL, req)
		body := readBody(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d under latency chaos: %s", i, resp.StatusCode, body)
		}
		tc, ok := stats.ExtractTraceparent(resp.Header)
		if !ok {
			t.Fatal("response carries no traceparent")
		}
		hedges := g.Registry().Snapshot().Get("gw.hedges")
		if hedges == lastHedges {
			continue // no hedge fired for this request
		}
		lastHedges = hedges
		// A hedge fired: wait briefly for the abandoned side's span.
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) && traceID == "" {
			for _, s := range g.tracer.TraceSpans(tc.TraceID) {
				if s.Name == "gw.attempt" && s.Attrs["outcome"] == "cancelled" {
					traceID = tc.TraceID.String()
					break
				}
			}
			if traceID == "" {
				time.Sleep(10 * time.Millisecond)
			}
		}
	}
	if traceID == "" {
		t.Fatal("60 requests under 40% latency chaos never produced a cancelled hedge loser")
	}

	ready := func(doc clusterTraceDoc) bool {
		cancelled := false
		for _, ev := range doc.TraceEvents {
			if ev.Name == "gw.attempt" && ev.Args["outcome"] == "cancelled" {
				cancelled = true
			}
		}
		return cancelled && len(pidsWithSpans(doc)) >= 2
	}
	_, raw := getStitched(t, gwSrv.URL, traceID, ready)
	var doc clusterTraceDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}

	gwAttempts := make(map[string]bool) // spanId -> is gw.attempt, pid 0
	cancelled := false
	for _, ev := range doc.TraceEvents {
		if ev.Pid != 0 || ev.Ph != "X" {
			continue
		}
		if ev.Name == "gw.attempt" {
			gwAttempts[ev.Args["spanId"]] = true
			if ev.Args["outcome"] == "cancelled" {
				cancelled = true
			}
		}
	}
	if !cancelled {
		t.Fatal("stitched export lost the cancelled hedge-loser span")
	}
	if got := len(pidsWithSpans(doc)); got < 2 {
		t.Fatalf("stitched export has %d process tracks, want the gateway plus at least one shard", got)
	}
	linked := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" || ev.Pid == 0 || ev.Name != "http.request" {
			continue
		}
		if gwAttempts[ev.Args["parentSpanId"]] {
			linked++
		}
	}
	if linked == 0 {
		t.Fatal("no shard span links back to a gateway gw.attempt span")
	}
}
