package cluster

import (
	"context"
	"errors"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"

	"tcor/internal/resilience"
	"tcor/internal/serve"
	"tcor/internal/serve/client"
	"tcor/internal/stats"
)

// --- durable job routing ---
//
// A job lives on exactly one shard: the ring owner of its content-addressed
// ID. The gateway recomputes that ID — kind, tenant credential, compacted
// body, the same recipe serve.JobID uses — and routes the submission there,
// forwarding the body verbatim so the shard derives the identical ID. Reads
// and cancels route by the ID in the URL. Both walk the ring on failure: a
// submission lands on the owner's successor when the owner is down, and a
// later poll finds it there because a shard's 404 sends the lookup to the
// next ring candidate instead of the caller.

// routeJobSubmit forwards an ?async=1 submission to the shard owning the
// job's content address and passes the shard's answer through unchanged —
// 202 for a fresh job, 200 for an idempotent resubmission.
func (g *Gateway) routeJobSubmit(w http.ResponseWriter, r *http.Request, kind string, body []byte) {
	id := serve.JobID(kind, serve.TenantKeyFromRequest(r), body)
	path := "/v1/sweep?async=1"
	if kind == serve.JobKindArena {
		path = "/v1/arena?async=1"
	}
	ctx, cancel := g.requestContext(r, 0)
	defer cancel()
	g.jobSubmits.Inc()
	data, status, sh, err := g.jobAttempts(ctx, id, "gw.job.submit",
		func(actx context.Context, sh *shard) ([]byte, int, error) {
			return sh.client.SubmitJobRaw(actx, path, body)
		})
	if err != nil {
		g.writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(serve.ShardHeader, sh.name)
	w.WriteHeader(status)
	w.Write(data) //nolint:errcheck // client gone is its own problem
}

// handleJobs serves GET /v1/jobs at the gateway: the calling tenant's jobs
// across every shard, merged oldest-first — the same ordering one shard's
// own listing uses, extended cluster-wide.
func (g *Gateway) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		g.writeError(w, &gwError{status: http.StatusMethodNotAllowed,
			code: "method_not_allowed", msg: "use GET"})
		return
	}
	ctx, cancel := g.requestContext(r, 0)
	defer cancel()
	jobs, err := g.fanOutJobList(ctx)
	if err != nil {
		g.writeError(w, err)
		return
	}
	g.writeJSON(w, serve.JobsResponse{Jobs: jobs})
}

// fanOutJobList collects every shard's tenant-scoped job listing. Any shard
// failing fails the listing: a silently partial list would read as "those
// jobs are gone". Duplicated IDs — the same body resubmitted while ring
// candidates disagreed on a down owner — collapse to one row.
func (g *Gateway) fanOutJobList(ctx context.Context) ([]serve.JobRecord, error) {
	var mu sync.Mutex
	var firstErr error
	var all []serve.JobRecord
	var wg sync.WaitGroup
	for _, sh := range g.shards {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			jobs, err := sh.client.Jobs(ctx)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			all = append(all, jobs...)
		}(sh)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].CreatedAtMs != all[j].CreatedAtMs {
			return all[i].CreatedAtMs < all[j].CreatedAtMs
		}
		return all[i].ID < all[j].ID
	})
	deduped := all[:0]
	seen := make(map[string]bool, len(all))
	for _, rec := range all {
		if seen[rec.ID] {
			continue
		}
		seen[rec.ID] = true
		deduped = append(deduped, rec)
	}
	if deduped == nil {
		deduped = []serve.JobRecord{}
	}
	return deduped, nil
}

// handleJob proxies GET /v1/jobs/{id}, GET /v1/jobs/{id}/result and
// DELETE /v1/jobs/{id} to the shard holding the job — the ring owner first,
// walking successors when a shard errors or does not know the ID.
func (g *Gateway) handleJob(w http.ResponseWriter, r *http.Request) {
	id, sub, _ := strings.Cut(strings.TrimPrefix(r.URL.Path, "/v1/jobs/"), "/")
	if id == "" {
		g.writeError(w, &gwError{status: http.StatusNotFound,
			code: "job_not_found", msg: "no such job"})
		return
	}
	var call func(context.Context, *shard) ([]byte, int, error)
	switch {
	case sub == "" && r.Method == http.MethodGet:
		call = func(ctx context.Context, sh *shard) ([]byte, int, error) {
			data, err := sh.client.JobRaw(ctx, id)
			return data, http.StatusOK, err
		}
	case sub == "" && r.Method == http.MethodDelete:
		call = func(ctx context.Context, sh *shard) ([]byte, int, error) {
			data, err := sh.client.CancelJobRaw(ctx, id)
			return data, http.StatusOK, err
		}
	case sub == "result" && r.Method == http.MethodGet:
		call = func(ctx context.Context, sh *shard) ([]byte, int, error) {
			data, err := sh.client.JobResult(ctx, id)
			return data, http.StatusOK, err
		}
	default:
		g.writeError(w, &gwError{status: http.StatusMethodNotAllowed,
			code: "method_not_allowed", msg: "use GET or DELETE"})
		return
	}
	ctx, cancel := g.requestContext(r, 0)
	defer cancel()
	g.jobProxied.Inc()
	data, status, sh, err := g.jobAttempts(ctx, id, "gw.job.proxy", call)
	if err != nil {
		g.writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(serve.ShardHeader, sh.name)
	w.WriteHeader(status)
	w.Write(data) //nolint:errcheck // client gone is its own problem
}

// jobAttempts runs one job operation against the ring candidates for key in
// owner-first order under each shard's breaker and the chaos injector. A
// 404 walks to the next candidate — the job may live on a successor that
// absorbed its submission while the owner was down — and only becomes the
// caller's answer when no candidate knows the ID. Other 4xx answers (401
// unknown tenant, 409 not-done) pass through from the first shard that
// holds the job; 5xx and transport errors fail over.
func (g *Gateway) jobAttempts(ctx context.Context, key, op string, call func(context.Context, *shard) ([]byte, int, error)) ([]byte, int, *shard, error) {
	var firstErr, notFound error
	for attempt, idx := range g.ring.Successors(key) {
		sh := g.shards[idx]
		done, allowErr := sh.brk.Allow()
		if allowErr != nil {
			if firstErr == nil {
				firstErr = allowErr
			}
			continue
		}
		sp, actx := stats.StartSpan(ctx, op, "cluster")
		sp.SetAttr("shard", "shard-"+strconv.Itoa(sh.idx))
		sp.SetAttr("attempt", strconv.Itoa(attempt))
		if attempt > 0 {
			sp.SetAttr("failover", "true")
		}
		if err := g.chaos.Inject(actx, resilience.SiteProxy); err != nil {
			done(resilience.Ignore) // injected at the gateway, not the shard's fault
			sp.SetAttr("outcome", attemptOutcome(ctx, err))
			sp.End()
			if firstErr == nil {
				firstErr = err
			}
			g.failovers.Inc()
			continue
		}
		data, status, err := call(actx, sh)
		done(shardOutcome(err))
		sp.SetAttr("outcome", attemptOutcome(ctx, err))
		sp.End()
		if err == nil {
			return data, status, sh, nil
		}
		var ae *client.APIError
		if errors.As(err, &ae) && ae.Status < 500 && ae.Status != http.StatusTooManyRequests {
			if ae.Status == http.StatusNotFound {
				if notFound == nil {
					notFound = err
				}
				continue // not a failover: the shard is healthy, just not the holder
			}
			// The shard rejected the request itself — every shard would.
			return nil, 0, nil, err
		}
		if firstErr == nil {
			firstErr = err
		}
		g.failovers.Inc()
		if ctx.Err() != nil {
			break
		}
	}
	if notFound != nil {
		return nil, 0, nil, notFound
	}
	return nil, 0, nil, firstErr
}
