package cluster

import (
	"context"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"tcor/internal/resilience"
	"tcor/internal/stats"
)

// Cluster-wide trace stitching. One request fanned out through the gateway
// leaves span sets in several processes: the gateway's own tracer (root
// span plus one gw.attempt/gw.probe/gw.subsweep span per upstream try) and
// each shard's tracer (the spans its daemon recorded under the propagated
// trace ID). GET /v1/cluster/trace/<id> pulls every process's slice over
// the shards' /debug/trace?trace= endpoints and merges them into one
// Chrome trace_event / Perfetto export:
//
//   - one pid per process, named via process_name metadata events
//     ("gateway" = pid 0, "shard-<i>" = pid i+1, ring order);
//   - per-process clock-skew correction derived from the remote-parent
//     links: a shard's spans are shifted forward just enough that no span
//     starts before the gateway span that caused it, so the waterfall
//     stays causally ordered even when shard clocks run behind;
//   - span identity in the args (spanId/parentSpanId hex), so the
//     parent-child edges the traceparent header carried remain inspectable
//     in the viewer.
//
// A shard that cannot be reached — dead, or skipped because its breaker is
// open — degrades the export to a partial one: its status lands in
// otherData and a Warning header flags the response, but every reachable
// process's spans are still served.

// TraceCollectTimeout bounds the whole shard span-set collection.
const TraceCollectTimeout = 5 * time.Second

// traceEvent is one trace_event entry of the stitched export ("X" complete
// events for spans, "M" metadata events for process names).
type traceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int64             `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// clusterTraceDoc is the export container: trace_event JSON with the
// collection's bookkeeping (trace ID, per-shard fetch status) in
// otherData, where trace viewers ignore it.
type clusterTraceDoc struct {
	TraceEvents []traceEvent      `json:"traceEvents"`
	OtherData   map[string]string `json:"otherData"`
}

// processSet is one process's contribution: its pid slot and span slice.
type processSet struct {
	pid   int
	name  string
	spans []stats.SpanRecord
}

func (g *Gateway) handleClusterTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		g.writeError(w, &gwError{status: http.StatusMethodNotAllowed,
			code: "method_not_allowed", msg: "use GET"})
		return
	}
	raw := strings.TrimPrefix(r.URL.Path, "/v1/cluster/trace/")
	id, err := stats.ParseTraceID(raw)
	if err != nil {
		g.writeError(w, badRequest("trace ID: %v", err))
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), TraceCollectTimeout)
	defer cancel()

	doc, partial := g.stitchTrace(ctx, id)
	if partial {
		w.Header().Set("Warning", `199 tcord "partial trace: some shards unreachable"`)
	}
	g.writeJSON(w, doc)
}

// stitchTrace collects every process's span set for id and merges them.
// The bool reports a partial collection (at least one shard unreachable).
func (g *Gateway) stitchTrace(ctx context.Context, id stats.TraceID) (clusterTraceDoc, bool) {
	sets := make([]processSet, 1+len(g.shards))
	sets[0] = processSet{pid: 0, name: "gateway", spans: g.tracer.TraceSpans(id)}

	status := make([]string, len(g.shards))
	var wg sync.WaitGroup
	for _, sh := range g.shards {
		sets[sh.idx+1] = processSet{pid: sh.idx + 1, name: "shard-" + strconv.Itoa(sh.idx)}
		// Breaker-aware: a shard the router already considers down is not
		// worth a fetch timeout, and a trace pull must never count against
		// the breaker window that routing decisions read.
		if sh.brk.State() == resilience.Open {
			status[sh.idx] = "skipped: breaker open"
			continue
		}
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			ts, err := sh.client.TraceSpans(ctx, id)
			if err != nil {
				status[sh.idx] = "error: " + err.Error()
				return
			}
			status[sh.idx] = "ok"
			sets[sh.idx+1].spans = ts.Spans
		}(sh)
	}
	wg.Wait()

	applySkewOffsets(sets)

	doc := clusterTraceDoc{
		TraceEvents: []traceEvent{},
		OtherData:   map[string]string{"traceId": id.String()},
	}
	partial := false
	for i, st := range status {
		doc.OtherData["shard-"+strconv.Itoa(i)] = st
		if st != "ok" {
			partial = true
		}
	}

	// A common origin keeps timestamps small and two stitches of the same
	// span sets byte-identical: everything is relative to the earliest
	// (skew-corrected) span start across the cluster.
	var t0 time.Time
	for _, set := range sets {
		for _, s := range set.spans {
			if t0.IsZero() || s.Start.Before(t0) {
				t0 = s.Start
			}
		}
	}

	for _, set := range sets {
		if len(set.spans) == 0 {
			continue
		}
		doc.TraceEvents = append(doc.TraceEvents, traceEvent{
			Name: "process_name", Ph: "M", Pid: set.pid,
			Args: map[string]string{"name": set.name},
		})
		for _, s := range set.spans {
			args := make(map[string]string, len(s.Attrs)+2)
			for k, v := range s.Attrs {
				args[k] = v
			}
			args["spanId"] = s.SpanID.String()
			if !s.ParentSpan.IsZero() {
				args["parentSpanId"] = s.ParentSpan.String()
			}
			doc.TraceEvents = append(doc.TraceEvents, traceEvent{
				Name: s.Name, Cat: s.Cat, Ph: "X",
				Ts:  float64(s.Start.Sub(t0)) / float64(time.Microsecond),
				Dur: float64(s.Dur) / float64(time.Microsecond),
				Pid: set.pid, Tid: s.Root, Args: args,
			})
		}
	}
	// Deterministic output: metadata first, then spans by (pid, start,
	// span ID) — the span ID tiebreak totals the order when two spans share
	// a start timestamp.
	sort.SliceStable(doc.TraceEvents, func(i, j int) bool {
		a, b := doc.TraceEvents[i], doc.TraceEvents[j]
		if (a.Ph == "M") != (b.Ph == "M") {
			return a.Ph == "M"
		}
		if a.Pid != b.Pid {
			return a.Pid < b.Pid
		}
		if a.Ts != b.Ts {
			return a.Ts < b.Ts
		}
		return a.Args["spanId"] < b.Args["spanId"]
	})
	return doc, partial
}

// applySkewOffsets shifts each non-gateway process's spans forward so no
// span starts before its remote parent. The remote-parent links carried by
// the traceparent header give one causal constraint per cross-process
// edge: the child (the receiving process's root-of-process span) cannot
// really have started before the gateway span that issued the request, so
// any negative gap is clock skew and the process's whole span set shifts
// by the largest such gap. Gateway time (pid 0) is the reference and never
// moves.
func applySkewOffsets(sets []processSet) {
	starts := make(map[stats.SpanID]time.Time)
	for _, s := range sets[0].spans {
		starts[s.SpanID] = s.Start
	}
	for i := 1; i < len(sets); i++ {
		var offset time.Duration
		for _, s := range sets[i].spans {
			if !s.Remote || s.ParentSpan.IsZero() {
				continue
			}
			parentStart, ok := starts[s.ParentSpan]
			if !ok {
				continue
			}
			if gap := parentStart.Sub(s.Start); gap > offset {
				offset = gap
			}
		}
		if offset <= 0 {
			continue
		}
		for j := range sets[i].spans {
			sets[i].spans[j].Start = sets[i].spans[j].Start.Add(offset)
		}
	}
}
