package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"tcor/internal/resilience"
	"tcor/internal/serve"
)

// realCluster stands up n full serving stacks (admission, cache, worker
// pool — the same code path cmd/tcord runs) plus a gateway over them.
type realCluster struct {
	gateway  *Gateway
	gwURL    string
	shardURL []string
	servers  []*httptest.Server
}

func newRealCluster(t *testing.T, n int, shardOpts serve.Options, gwOpts Options) *realCluster {
	t.Helper()
	rc := &realCluster{}
	for i := 0; i < n; i++ {
		s := serve.NewServer(shardOpts)
		srv := httptest.NewServer(s.Handler())
		t.Cleanup(srv.Close)
		rc.servers = append(rc.servers, srv)
		rc.shardURL = append(rc.shardURL, srv.URL)
	}
	gwOpts.Shards = rc.shardURL
	g, err := NewGateway(gwOpts)
	if err != nil {
		t.Fatal(err)
	}
	rc.gateway = g
	gwSrv := httptest.NewServer(g.Handler())
	t.Cleanup(gwSrv.Close)
	rc.gwURL = gwSrv.URL
	return rc
}

// goldenSweep is the reference workload: every item is cheap (1 frame)
// but the batch spans benchmarks, configurations and cache sizes, so the
// items spread across the ring.
func goldenSweep() serve.SweepRequest {
	var items []serve.SimulateRequest
	for _, alias := range []string{"CCS", "SoD", "GTr"} {
		for _, cfg := range []string{"baseline", "tcor"} {
			for _, kb := range []int{32, 64} {
				items = append(items, serve.SimulateRequest{
					Benchmark: alias, Config: cfg, TileCacheKB: kb, Frames: 1,
				})
			}
		}
	}
	return serve.SweepRequest{Items: items}
}

func post(t *testing.T, url, path string, v any) (int, http.Header, []byte) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, data
}

// TestGoldenGatewayMatchesSingleNode is the cluster's fidelity contract:
// a sweep fanned across three shards and merged by the gateway is
// byte-identical to the same sweep served by one standalone daemon, and
// so is every individual simulation.
func TestGoldenGatewayMatchesSingleNode(t *testing.T) {
	single := httptest.NewServer(serve.NewServer(serve.Options{}).Handler())
	defer single.Close()
	rc := newRealCluster(t, 3, serve.Options{}, Options{})

	sweep := goldenSweep()
	wantStatus, _, want := post(t, single.URL, "/v1/sweep", sweep)
	if wantStatus != http.StatusOK {
		t.Fatalf("single-node sweep: status %d: %s", wantStatus, want)
	}
	gotStatus, _, got := post(t, rc.gwURL, "/v1/sweep", sweep)
	if gotStatus != http.StatusOK {
		t.Fatalf("gateway sweep: status %d: %s", gotStatus, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("gateway sweep differs from single-node:\ngateway: %s\nsingle:  %s", got, want)
	}

	// Individual simulations pass through verbatim too, whichever shard
	// owns them.
	for _, item := range sweep.Items[:4] {
		_, _, want := post(t, single.URL, "/v1/simulate", item)
		gotStatus, hdr, got := post(t, rc.gwURL, "/v1/simulate", item)
		if gotStatus != http.StatusOK {
			t.Fatalf("gateway simulate: status %d: %s", gotStatus, got)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("gateway simulate differs from single-node for %+v", item)
		}
		if hdr.Get(serve.ShardHeader) == "" {
			t.Fatal("gateway response does not name its shard")
		}
	}
}

// TestGoldenSweepSurvivesDeadShard: with one of three shards already
// dead, the sweep still merges byte-identical to a single node — the
// dead shard's items fail over to the ring successors.
func TestGoldenSweepSurvivesDeadShard(t *testing.T) {
	single := httptest.NewServer(serve.NewServer(serve.Options{}).Handler())
	defer single.Close()
	// Single client-side attempt so the dead shard costs one refused
	// connection, not a retry storm.
	rc := newRealCluster(t, 3, serve.Options{}, Options{
		Retry: &resilience.RetryPolicy{MaxAttempts: 1},
	})

	rc.servers[1].CloseClientConnections()
	rc.servers[1].Close()

	sweep := goldenSweep()
	_, _, want := post(t, single.URL, "/v1/sweep", sweep)
	gotStatus, _, got := post(t, rc.gwURL, "/v1/sweep", sweep)
	if gotStatus != http.StatusOK {
		t.Fatalf("sweep with a dead shard: status %d: %s", gotStatus, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("sweep with a dead shard differs from single-node:\ngateway: %s\nsingle:  %s", got, want)
	}
	if err := rc.gateway.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestGoldenSweepSurvivesMidSweepKill kills a shard while the sweep is in
// flight. Whatever the timing — before its sub-sweep starts, mid-item, or
// after it finished — the caller sees a complete, byte-identical
// response.
func TestGoldenSweepSurvivesMidSweepKill(t *testing.T) {
	single := httptest.NewServer(serve.NewServer(serve.Options{}).Handler())
	defer single.Close()
	rc := newRealCluster(t, 3, serve.Options{Workers: 1}, Options{
		Retry: &resilience.RetryPolicy{MaxAttempts: 1},
	})

	sweep := goldenSweep()
	_, _, want := post(t, single.URL, "/v1/sweep", sweep)

	type result struct {
		status int
		body   []byte
	}
	done := make(chan result, 1)
	go func() {
		status, _, body := post(t, rc.gwURL, "/v1/sweep", sweep)
		done <- result{status, body}
	}()
	// Give the fan-out a moment to be genuinely in flight, then kill one
	// shard hard: open connections die mid-response.
	time.Sleep(30 * time.Millisecond)
	rc.servers[2].CloseClientConnections()
	rc.servers[2].Close()

	res := <-done
	if res.status != http.StatusOK {
		t.Fatalf("sweep with a mid-sweep kill: status %d: %s", res.status, res.body)
	}
	if !bytes.Equal(res.body, want) {
		t.Fatalf("sweep with a mid-sweep kill differs from single-node:\ngateway: %s\nsingle:  %s", res.body, want)
	}
	if err := rc.gateway.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestGoldenSimulateChaosShards: every shard running with an armed fault
// injector (latency + 500s at the HTTP and simulate sites) behind a
// retrying, failing-over gateway still yields zero caller-visible
// failures and byte-identical bodies.
func TestGoldenSimulateChaosShards(t *testing.T) {
	single := httptest.NewServer(serve.NewServer(serve.Options{}).Handler())
	defer single.Close()

	shardOpts := func(seed int64) serve.Options {
		inj := resilience.NewInjector(seed)
		inj.Arm(resilience.SiteHTTP, resilience.FaultPlan{Rate: 0.2, Codes: []int{500, 503}})
		return serve.Options{Chaos: inj}
	}
	var rc realCluster
	for i := 0; i < 3; i++ {
		s := serve.NewServer(shardOpts(int64(100 + i)))
		srv := httptest.NewServer(s.Handler())
		t.Cleanup(srv.Close)
		rc.servers = append(rc.servers, srv)
		rc.shardURL = append(rc.shardURL, srv.URL)
	}
	g, err := NewGateway(Options{
		Shards: rc.shardURL,
		Retry: &resilience.RetryPolicy{
			MaxAttempts: 4,
			BaseDelay:   5 * time.Millisecond,
			MaxDelay:    50 * time.Millisecond,
		},
		// The shards inject 20% 500s on purpose; keep their breakers out
		// of the way so every request exercises retry + failover.
		Breaker: &resilience.BreakerConfig{Window: 64, MinSamples: 64, Cooldown: time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	gwSrv := httptest.NewServer(g.Handler())
	defer gwSrv.Close()

	for i, item := range goldenSweep().Items {
		_, _, want := post(t, single.URL, "/v1/simulate", item)
		status, _, got := post(t, gwSrv.URL, "/v1/simulate", item)
		if status != http.StatusOK {
			t.Fatalf("item %d: status %d under shard chaos: %s", i, status, got)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("item %d: body differs from single-node under shard chaos", i)
		}
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestGoldenGatewayArenaMatchesSingleNode: a policy race proxied through
// the gateway is byte-identical to the same race on a standalone daemon,
// and a repeat is answered from the owning shard's arena cache.
func TestGoldenGatewayArenaMatchesSingleNode(t *testing.T) {
	single := httptest.NewServer(serve.NewServer(serve.Options{}).Handler())
	defer single.Close()
	rc := newRealCluster(t, 3, serve.Options{}, Options{})

	req := serve.ArenaRequest{
		Policies:   []string{"LRU", "OPT", "ARC"},
		Benchmarks: []string{"CCS"},
		SizeKB:     16,
	}
	wantStatus, _, want := post(t, single.URL, "/v1/arena", req)
	if wantStatus != http.StatusOK {
		t.Fatalf("single-node arena: status %d: %s", wantStatus, want)
	}
	gotStatus, hdr, got := post(t, rc.gwURL, "/v1/arena", req)
	if gotStatus != http.StatusOK {
		t.Fatalf("gateway arena: status %d: %s", gotStatus, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("gateway arena differs from single-node:\ngateway: %s\nsingle:  %s", got, want)
	}
	if hdr.Get(serve.ShardHeader) == "" {
		t.Fatal("gateway arena response does not name its shard")
	}

	status2, hdr2, got2 := post(t, rc.gwURL, "/v1/arena", req)
	if status2 != http.StatusOK {
		t.Fatalf("repeat arena: status %d", status2)
	}
	if hdr2.Get("X-Tcord-Cache") != "hit" {
		t.Fatalf("repeat arena disposition = %q, want hit", hdr2.Get("X-Tcord-Cache"))
	}
	if !bytes.Equal(got2, got) {
		t.Fatal("repeat arena served different bytes")
	}
	if err := rc.gateway.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
