// Package cluster scales the tcord serving layer horizontally: N
// independent shard daemons, each a full single-node serving stack
// (admission gate, result cache, circuit breaker, chaos sites), fronted
// by a gateway that speaks the same public API.
//
// # Placement
//
// Every simulation reduces to a content address (serve.CanonicalKey): a
// sha256 over the resolved workload spec and configuration. A
// consistent-hash ring with virtual nodes (Ring) maps each address to an
// owning shard, so repeated requests for the same simulation land on the
// same shard's result cache no matter which gateway routes them, and
// adding a shard moves only ~1/N of the key space. Per-node serving
// limits never enter the hash, so a gateway and every shard agree on
// placement from the shard list alone — there is no coordination service
// and no shard-to-shard traffic; all routing intelligence lives in the
// gateway.
//
// # Routing
//
// /v1/simulate goes to the key's owner. Two mechanisms bound tail
// latency and ride over shard failure:
//
//   - Hedging: when the owner has not answered within the hedge delay
//     (adaptive: the observed p99 of proxied simulate latency, floored
//     at MinHedge), the gateway issues a second copy of the request to
//     the next shard on the ring and serves whichever answers first.
//     Simulations are deterministic and content-addressed, so duplicated
//     work is wasted cycles at worst, never divergent answers.
//
//   - Failover: when an attempt errors (transport failure, 5xx), the
//     gateway walks the ring successors. Before a non-owner shard is
//     allowed to simulate, the owner's cache is probed with a cache-only
//     request (serve.CacheOnlyHeader): a shard whose compute path is
//     broken can still answer from cache — bounded-stale included — and
//     a dead one fails the probe fast.
//
// Each shard sits behind its own circuit breaker in the gateway; an open
// breaker takes the shard out of the candidate order entirely, so a dead
// shard costs one failed round before traffic routes around it. The
// typed client under each shard adds bounded retries for transient
// blips.
//
// /v1/sweep fans out as per-owner sub-sweeps (chunked to the shards'
// sweep limit) and reassembles the runs in global item order. Run bodies
// travel as raw bytes end to end, so the merged response is
// byte-identical to a single node serving the whole sweep. A sub-sweep
// that fails mid-flight — a shard killed at the worst moment — degrades
// to item-by-item routing with full hedging and failover; callers see
// nothing but latency.
//
// # Observability
//
// The gateway meters routing decisions (gw.hedges, gw.hedge.wins,
// gw.failovers, gw.probe.hits, gw.sweep.fallbackItems), per-shard client
// behavior (gw.shard.<i>.attempts/retries/giveups) and proxied latency
// (gw.proxy.duration, which also drives the adaptive hedger). GET
// /v1/ring reports the topology and each shard's breaker state; the
// standard /healthz, /readyz, /metrics and /v1/stats surfaces behave as
// on a single daemon. Request IDs pass through to shards, so one ID is
// greppable across both tiers' access logs.
package cluster
