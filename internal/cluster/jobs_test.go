package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"tcor/internal/serve"
)

// headerTrap records the identifying headers of every request a fake shard
// receives, keyed by URL path.
type headerTrap struct {
	mu   sync.Mutex
	seen []http.Header
}

func (ht *headerTrap) record(r *http.Request) {
	ht.mu.Lock()
	ht.seen = append(ht.seen, r.Header.Clone())
	ht.mu.Unlock()
}

func (ht *headerTrap) last() http.Header {
	ht.mu.Lock()
	defer ht.mu.Unlock()
	if len(ht.seen) == 0 {
		return nil
	}
	return ht.seen[len(ht.seen)-1]
}

// postSimAs drives one /v1/simulate request through the gateway with a
// tenant credential and caller-chosen request ID.
func postSimAs(t *testing.T, url string, req serve.SimulateRequest, tenantKey, reqID string) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, url+"/v1/simulate", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(serve.TenantHeader, tenantKey)
	hreq.Header.Set(serve.RequestIDHeader, reqID)
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestGatewayTenantSurvivesFailover: the caller's tenant credential and
// request ID both reach the failover shard — quota and cache accounting
// follow the caller wherever the request lands, and the access logs stay
// greppable under one ID.
func TestGatewayTenantSurvivesFailover(t *testing.T) {
	fc := newFakeCluster(t, 2)
	g, srv := newTestGateway(t, fc, singleAttempt())

	order := ownerOf(t, g, testSim)
	var trap headerTrap
	fc.setRole(order[0], fail(http.StatusInternalServerError, "internal"))
	fc.setRole(order[1], func(w http.ResponseWriter, r *http.Request) {
		trap.record(r)
		answer("{\"from\":\"successor\"}\n", "miss")(w, r)
	})

	resp := postSimAs(t, srv.URL, testSim, "key-acme", "req-failover-1")
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failover got %d %q", resp.StatusCode, body)
	}
	hdr := trap.last()
	if hdr == nil {
		t.Fatal("the successor never saw the request")
	}
	if got := hdr.Get(serve.TenantHeader); got != "key-acme" {
		t.Fatalf("failover attempt carried tenant %q, want key-acme", got)
	}
	if got := hdr.Get(serve.RequestIDHeader); got != "req-failover-1" {
		t.Fatalf("failover attempt carried request ID %q, want req-failover-1", got)
	}
}

// TestGatewayTenantSurvivesHedge: the latency hedge's second copy carries
// the same tenant credential and request ID as the first.
func TestGatewayTenantSurvivesHedge(t *testing.T) {
	fc := newFakeCluster(t, 2)
	opts := singleAttempt()
	opts.HedgeAfter = 20 * time.Millisecond
	g, srv := newTestGateway(t, fc, opts)

	order := ownerOf(t, g, testSim)
	var trap headerTrap
	fc.setRole(order[0], func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(400 * time.Millisecond)
		answer("{\"from\":\"slow\"}\n", "miss")(w, r)
	})
	fc.setRole(order[1], func(w http.ResponseWriter, r *http.Request) {
		trap.record(r)
		answer("{\"from\":\"fast\"}\n", "hit")(w, r)
	})

	resp := postSimAs(t, srv.URL, testSim, "key-acme", "req-hedge-1")
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "fast") {
		t.Fatalf("hedged request got %d %q", resp.StatusCode, body)
	}
	hdr := trap.last()
	if hdr == nil {
		t.Fatal("the hedge target never saw the request")
	}
	if got := hdr.Get(serve.TenantHeader); got != "key-acme" {
		t.Fatalf("hedge attempt carried tenant %q, want key-acme", got)
	}
	if got := hdr.Get(serve.RequestIDHeader); got != "req-hedge-1" {
		t.Fatalf("hedge attempt carried request ID %q, want req-hedge-1", got)
	}
}

// jobShard answers the job endpoints the way a real shard would: an async
// sweep submission is acknowledged with the content-addressed ID recomputed
// from the exact body received, and single-job reads answer from a fixed
// record set.
func jobShard(records map[string]serve.JobRecord) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == "/v1/sweep" && serve.AsyncRequested(r):
			body, _ := io.ReadAll(r.Body)
			id := serve.JobID(serve.JobKindSweep, serve.TenantKeyFromRequest(r), body)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusAccepted)
			json.NewEncoder(w).Encode(serve.JobResponse{Job: serve.JobRecord{
				ID: id, Kind: serve.JobKindSweep, Tenant: "default",
				State: serve.JobQueued, TotalCells: 1, CreatedAtMs: 42,
			}})
		case r.URL.Path == "/v1/jobs":
			var jobs []serve.JobRecord
			for _, rec := range records {
				jobs = append(jobs, rec)
			}
			if jobs == nil {
				jobs = []serve.JobRecord{}
			}
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(serve.JobsResponse{Jobs: jobs})
		case strings.HasPrefix(r.URL.Path, "/v1/jobs/"):
			id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
			rec, ok := records[id]
			if !ok {
				fail(http.StatusNotFound, "job_not_found")(w, r)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(serve.JobResponse{Job: rec})
		default:
			fail(http.StatusInternalServerError, "unexpected_path")(w, r)
		}
	}
}

// TestGatewayAsyncSubmitRoutesToJobOwner: an ?async=1 submission lands on
// the ring owner of the job's content address — the ID the shard derives
// from the forwarded body matches the one the gateway routed by — and the
// shard's 202 passes through.
func TestGatewayAsyncSubmitRoutesToJobOwner(t *testing.T) {
	fc := newFakeCluster(t, 3)
	for _, u := range fc.urls {
		fc.setRole(u, jobShard(nil))
	}
	g, srv := newTestGateway(t, fc, singleAttempt())

	req := serve.SweepRequest{Items: []serve.SimulateRequest{testSim}}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	wantID := serve.JobID(serve.JobKindSweep, "key-acme", body)
	wantOwner := g.shards[g.Ring().Successors(wantID)[0]].name

	hreq, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/sweep?async=1", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(serve.TenantHeader, "key-acme")
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	raw := readBody(t, resp)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit got %d %q, want 202", resp.StatusCode, raw)
	}
	var jr serve.JobResponse
	if err := json.Unmarshal([]byte(raw), &jr); err != nil {
		t.Fatalf("decoding job response: %v\n%s", err, raw)
	}
	if jr.Job.ID != wantID {
		t.Fatalf("shard derived job ID %s, gateway routed by %s — the body was not forwarded verbatim", jr.Job.ID, wantID)
	}
	if got := resp.Header.Get(serve.ShardHeader); got != wantOwner {
		t.Fatalf("submission served by %s, ring owner of the job is %s", got, wantOwner)
	}
	if got := g.Registry().Snapshot().Get("gw.jobs.submits"); got != 1 {
		t.Fatalf("gw.jobs.submits = %d, want 1", got)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestGatewayJobLookupWalksRing: a shard answering 404 for a job ID sends
// the lookup to the next ring candidate — a job submitted during its
// owner's downtime lives on a successor, and polling through the gateway
// still finds it. When no shard knows the ID, the 404 is the answer.
func TestGatewayJobLookupWalksRing(t *testing.T) {
	fc := newFakeCluster(t, 2)
	g, srv := newTestGateway(t, fc, singleAttempt())

	const id = "f00dfeedf00dfeedf00dfeedf00dfeed"
	rec := serve.JobRecord{ID: id, Kind: serve.JobKindSweep, Tenant: "default",
		State: serve.JobDone, TotalCells: 1, DoneCells: 1, CreatedAtMs: 42}
	order := g.Ring().Successors(id)
	owner, successor := g.shards[order[0]].name, g.shards[order[1]].name
	fc.setRole(owner, jobShard(nil)) // healthy, but does not hold the job
	fc.setRole(successor, jobShard(map[string]serve.JobRecord{id: rec}))

	resp, err := http.Get(srv.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	raw := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("job lookup got %d %q, want the successor's record", resp.StatusCode, raw)
	}
	var jr serve.JobResponse
	if err := json.Unmarshal([]byte(raw), &jr); err != nil || jr.Job.ID != id {
		t.Fatalf("job lookup answered %s", raw)
	}
	if got := resp.Header.Get(serve.ShardHeader); got != successor {
		t.Fatalf("job served by %s, want the successor %s", got, successor)
	}
	// The walk is not a failover: the owner answered, precisely, 404.
	if got := g.Registry().Snapshot().Get("gw.failovers"); got != 0 {
		t.Fatalf("gw.failovers = %d after a 404 walk, want 0", got)
	}

	resp, err = http.Get(srv.URL + "/v1/jobs/aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa")
	if err != nil {
		t.Fatal(err)
	}
	raw = readBody(t, resp)
	if resp.StatusCode != http.StatusNotFound || !strings.Contains(raw, "job_not_found") {
		t.Fatalf("unknown job got %d %q, want 404 job_not_found", resp.StatusCode, raw)
	}
}

// TestGatewayJobsListMerges: GET /v1/jobs at the gateway is every shard's
// listing merged oldest-first, duplicate IDs collapsed.
func TestGatewayJobsListMerges(t *testing.T) {
	fc := newFakeCluster(t, 2)
	g, srv := newTestGateway(t, fc, singleAttempt())

	shared := serve.JobRecord{ID: "cc", Kind: serve.JobKindSweep, State: serve.JobQueued, CreatedAtMs: 30}
	fc.setRole(fc.urls[0], jobShard(map[string]serve.JobRecord{
		"bb": {ID: "bb", Kind: serve.JobKindSweep, State: serve.JobDone, CreatedAtMs: 20},
		"cc": shared,
	}))
	fc.setRole(fc.urls[1], jobShard(map[string]serve.JobRecord{
		"aa": {ID: "aa", Kind: serve.JobKindArena, State: serve.JobRunning, CreatedAtMs: 10},
		"cc": shared,
	}))
	_ = g

	resp, err := http.Get(srv.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	raw := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("job list got %d %q", resp.StatusCode, raw)
	}
	var jl serve.JobsResponse
	if err := json.Unmarshal([]byte(raw), &jl); err != nil {
		t.Fatalf("decoding job list: %v\n%s", err, raw)
	}
	var ids []string
	for _, rec := range jl.Jobs {
		ids = append(ids, rec.ID)
	}
	if got := strings.Join(ids, ","); got != "aa,bb,cc" {
		t.Fatalf("merged listing = %s, want aa,bb,cc (oldest-first, deduplicated)", got)
	}
}

// TestGatewayRollupCarriesTenantSeries: the cluster metrics rollup passes
// per-tenant serving series through with shard labels, so one scrape shows
// every tenant's traffic on every shard.
func TestGatewayRollupCarriesTenantSeries(t *testing.T) {
	fc := newFakeCluster(t, 2)
	for i, u := range fc.urls {
		i := i
		fc.setRole(u, func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path != "/metrics" {
				fail(http.StatusInternalServerError, "unexpected_path")(w, r)
				return
			}
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			fmt.Fprintf(w, "# TYPE tcord_serve_tenant_alpha_requests counter\ntcord_serve_tenant_alpha_requests %d\n", 10+i)
		})
	}
	_, srv := newTestGateway(t, fc, singleAttempt())

	resp, err := http.Get(srv.URL + "/v1/cluster/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rollup got %d %q", resp.StatusCode, raw)
	}
	for i := range fc.urls {
		want := fmt.Sprintf("tcord_serve_tenant_alpha_requests{shard=\"shard-%d\"} %d", i, 10+i)
		if !strings.Contains(raw, want) {
			t.Fatalf("rollup is missing %q:\n%s", want, raw)
		}
	}
	if !strings.Contains(raw, `tcord_serve_tenant_alpha_requests{shard="fleet"} 21`) {
		t.Fatalf("rollup is missing the fleet aggregate of the per-tenant series:\n%s", raw)
	}
}
