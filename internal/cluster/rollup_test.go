package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"tcor/internal/resilience"
	"tcor/internal/serve"
)

func getClusterMetrics(t *testing.T, gwURL string) (http.Header, string) {
	t.Helper()
	resp, err := http.Get(gwURL + "/v1/cluster/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	page, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster metrics: status %d: %s", resp.StatusCode, page)
	}
	return resp.Header, string(page)
}

// seriesValues collects every sample of one family from the rollup page,
// keyed by the value of its shard label.
func seriesValues(t *testing.T, text, name string) map[string]int64 {
	t.Helper()
	out := make(map[string]int64)
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, name+"{") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseInt(line[sp+1:], 10, 64)
		if err != nil {
			t.Fatalf("parsing %q: %v", line, err)
		}
		labels := line[len(name)+1 : strings.LastIndexByte(line, '}')]
		out[labelValue(labels, "shard")] = v
	}
	return out
}

// TestClusterMetricsRollup: one page unions every shard's exposition under
// shard labels and appends fleet aggregates — counters summed, histograms
// merged through the shared bucket scheme — that exactly equal the sum of
// the shard series they aggregate.
func TestClusterMetricsRollup(t *testing.T) {
	rc := newRealCluster(t, 3, serve.Options{}, Options{})
	// Warm every shard's serving metrics with a fanned-out sweep.
	status, _, body := post(t, rc.gwURL, "/v1/sweep", goldenSweep())
	if status != http.StatusOK {
		t.Fatalf("sweep: status %d: %s", status, body)
	}

	hdr, text := getClusterMetrics(t, rc.gwURL)
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q, want the Prometheus text format", ct)
	}
	if w := hdr.Get("Warning"); w != "" {
		t.Fatalf("complete rollup flagged partial: %q", w)
	}

	for i := 0; i < 3; i++ {
		up := fmt.Sprintf("tcord_cluster_shard_up{shard=\"shard-%d\"} 1", i)
		if !strings.Contains(text, up) {
			t.Errorf("rollup is missing %q", up)
		}
	}

	// Every shard contributes its serving series under its own label, and
	// the fleet counter is their exact sum.
	reqs := seriesValues(t, text, "tcord_serve_http_requests")
	var sum int64
	for i := 0; i < 3; i++ {
		v, ok := reqs["shard-"+strconv.Itoa(i)]
		if !ok {
			t.Fatalf("rollup has no tcord_serve_http_requests series for shard-%d:\n%s", i, text)
		}
		if v == 0 {
			t.Errorf("shard-%d reports zero http requests after serving a sweep", i)
		}
		sum += v
	}
	fleet, ok := reqs["fleet"]
	if !ok {
		t.Fatal("rollup has no fleet aggregate for tcord_serve_http_requests")
	}
	if fleet != sum {
		t.Fatalf("fleet http requests = %d, want the shard sum %d", fleet, sum)
	}

	// Histograms aggregate through Histogram.Merge: the fleet _count is the
	// sum of the shard counts and the fleet family re-emits bucket lines.
	counts := seriesValues(t, text, "tcord_serve_http_latency_count")
	sum = 0
	for i := 0; i < 3; i++ {
		v, ok := counts["shard-"+strconv.Itoa(i)]
		if !ok {
			t.Fatalf("rollup has no latency histogram for shard-%d", i)
		}
		sum += v
	}
	if counts["fleet"] != sum {
		t.Fatalf("fleet latency count = %d, want the shard sum %d", counts["fleet"], sum)
	}
	sums := seriesValues(t, text, "tcord_serve_http_latency_sum")
	if want := sums["shard-0"] + sums["shard-1"] + sums["shard-2"]; sums["fleet"] != want {
		t.Fatalf("fleet latency sum = %d, want the shard sum %d", sums["fleet"], want)
	}
	if !strings.Contains(text, `tcord_serve_http_latency_bucket{le="`) {
		t.Fatal("rollup dropped the latency histogram's bucket lines")
	}
	if !strings.Contains(text, `,shard="fleet"} `) {
		t.Fatal("rollup has no fleet-labeled bucket lines")
	}
}

// TestClusterMetricsPartialOnDeadShard: a SIGKILL-style shard death
// degrades the rollup to a flagged partial — its availability gauge drops
// to zero, the Warning header fires, and the dead shard contributes no
// series — while the live shards' union still serves.
func TestClusterMetricsPartialOnDeadShard(t *testing.T) {
	rc := newRealCluster(t, 3, serve.Options{}, Options{
		Retry: &resilience.RetryPolicy{MaxAttempts: 1},
	})
	rc.servers[1].CloseClientConnections()
	rc.servers[1].Close()

	hdr, text := getClusterMetrics(t, rc.gwURL)
	if w := hdr.Get("Warning"); !strings.Contains(w, "partial rollup") {
		t.Fatalf("Warning = %q, want the partial-rollup flag", w)
	}
	ups := seriesValues(t, text, "tcord_cluster_shard_up")
	if ups["shard-1"] != 0 {
		t.Fatalf("dead shard's up gauge = %d, want 0", ups["shard-1"])
	}
	for _, s := range []string{"shard-0", "shard-2"} {
		if ups[s] != 1 {
			t.Fatalf("live shard %s's up gauge = %d, want 1", s, ups[s])
		}
	}
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "tcord_cluster_shard_up") {
			continue
		}
		if strings.Contains(line, `shard="shard-1"`) {
			t.Fatalf("dead shard still contributes a series: %q", line)
		}
	}
	reqs := seriesValues(t, text, "tcord_serve_http_requests")
	for _, s := range []string{"shard-0", "shard-2"} {
		if _, ok := reqs[s]; !ok {
			t.Errorf("live shard %s's series missing from the partial rollup", s)
		}
	}
	if _, ok := reqs["fleet"]; !ok {
		t.Error("partial rollup dropped the fleet aggregate")
	}
}

// TestClusterHealthRollup: the JSON companion reports per-shard
// readyz/breaker state and the cluster verdict moves ok -> degraded when
// a shard dies.
func TestClusterHealthRollup(t *testing.T) {
	rc := newRealCluster(t, 3, serve.Options{}, Options{
		Retry: &resilience.RetryPolicy{MaxAttempts: 1},
	})
	get := func() ClusterHealth {
		t.Helper()
		resp, err := http.Get(rc.gwURL + "/v1/cluster/health")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("cluster health: status %d", resp.StatusCode)
		}
		var h ClusterHealth
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return h
	}

	h := get()
	if h.Status != "ok" {
		t.Fatalf("status %q with every shard ready, want ok", h.Status)
	}
	if len(h.Shards) != 3 {
		t.Fatalf("%d shard rows, want 3", len(h.Shards))
	}
	for i, row := range h.Shards {
		if row.Name != rc.shardURL[i] || row.Index != i {
			t.Errorf("row %d is %s/%d, want %s/%d", i, row.Name, row.Index, rc.shardURL[i], i)
		}
		if !row.Ready {
			t.Errorf("shard %d not ready in a healthy cluster: %s", i, row.Detail)
		}
		if row.Breaker != "closed" {
			t.Errorf("shard %d breaker %q, want closed", i, row.Breaker)
		}
	}

	rc.servers[2].CloseClientConnections()
	rc.servers[2].Close()
	h = get()
	if h.Status != "degraded" {
		t.Fatalf("status %q with one dead shard, want degraded", h.Status)
	}
	if h.Shards[2].Ready {
		t.Error("dead shard reported ready")
	}
	if h.Shards[2].Detail == "" {
		t.Error("dead shard's row carries no failure detail")
	}
	for _, i := range []int{0, 1} {
		if !h.Shards[i].Ready {
			t.Errorf("live shard %d reported not ready", i)
		}
	}
}
