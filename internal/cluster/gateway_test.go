package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"tcor/internal/resilience"
	"tcor/internal/serve"
	"tcor/internal/stats"
)

// fakeCluster is a set of scripted shard servers whose behavior is
// assigned per role after the ring is known — ring placement depends on
// the servers' (random) ports, so tests pick the owner at runtime.
type fakeCluster struct {
	mu       sync.Mutex
	handlers map[string]http.HandlerFunc // by base URL
	servers  []*httptest.Server
	urls     []string
}

func newFakeCluster(t *testing.T, n int) *fakeCluster {
	t.Helper()
	fc := &fakeCluster{handlers: make(map[string]http.HandlerFunc)}
	for i := 0; i < n; i++ {
		var srv *httptest.Server
		srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			fc.mu.Lock()
			h := fc.handlers[srv.URL]
			fc.mu.Unlock()
			if h == nil {
				t.Errorf("no handler assigned for %s", srv.URL)
				w.WriteHeader(http.StatusInternalServerError)
				return
			}
			h(w, r)
		}))
		t.Cleanup(srv.Close)
		fc.servers = append(fc.servers, srv)
		fc.urls = append(fc.urls, srv.URL)
	}
	return fc
}

func (fc *fakeCluster) setRole(url string, h http.HandlerFunc) {
	fc.mu.Lock()
	fc.handlers[url] = h
	fc.mu.Unlock()
}

// answer returns a handler serving body on /v1/simulate with the given
// cache header; /v1/sweep answers each item with bodyFor(item) sans
// newline.
func answer(body string, outcome string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if outcome != "" {
			w.Header().Set("X-Tcord-Cache", outcome)
		}
		io.WriteString(w, body)
	}
}

func fail(status int, code string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(serve.ErrorBody{Error: serve.ErrorDetail{Code: code, Message: code}})
	}
}

// singleAttempt keeps router tests deterministic: no client-level retries,
// breakers that effectively never trip unless the test wants them to.
func singleAttempt() Options {
	return Options{
		Retry:   &resilience.RetryPolicy{MaxAttempts: 1},
		Breaker: &resilience.BreakerConfig{Window: 64, MinSamples: 64, Cooldown: time.Hour},
	}
}

func newTestGateway(t *testing.T, fc *fakeCluster, opts Options) (*Gateway, *httptest.Server) {
	t.Helper()
	opts.Shards = fc.urls
	g, err := NewGateway(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(g.Handler())
	t.Cleanup(srv.Close)
	return g, srv
}

var testSim = serve.SimulateRequest{Benchmark: "GTr", Config: "tcor", TileCacheKB: 64, Frames: 1}

func postSim(t *testing.T, url string, req serve.SimulateRequest) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/simulate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readBody(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// ownerOf returns the shard URLs in the gateway's try order for req.
func ownerOf(t *testing.T, g *Gateway, req serve.SimulateRequest) []string {
	t.Helper()
	key, err := serve.CanonicalKey(req)
	if err != nil {
		t.Fatal(err)
	}
	var order []string
	for _, n := range g.Ring().Successors(key) {
		order = append(order, g.shards[n].name)
	}
	return order
}

// TestGatewayRoutesToOwner: every request lands on the shard the ring
// assigns its content address, and the response names it.
func TestGatewayRoutesToOwner(t *testing.T) {
	fc := newFakeCluster(t, 3)
	for _, u := range fc.urls {
		fc.setRole(u, answer(fmt.Sprintf("{\"from\":%q}\n", u), "miss"))
	}
	g, srv := newTestGateway(t, fc, singleAttempt())

	for kb := 16; kb <= 256; kb *= 2 {
		req := testSim
		req.TileCacheKB = kb
		want := ownerOf(t, g, req)[0]
		resp := postSim(t, srv.URL, req)
		body := readBody(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("kb=%d: status %d: %s", kb, resp.StatusCode, body)
		}
		if got := resp.Header.Get(serve.ShardHeader); got != want {
			t.Fatalf("kb=%d served by %s, ring owner is %s", kb, got, want)
		}
		if !strings.Contains(body, want) {
			t.Fatalf("kb=%d body %q did not come from owner %s", kb, body, want)
		}
	}
}

// TestGatewayHedgesSlowOwner: a fixed hedge delay fires a second copy of
// the request at the next shard on the ring, and the fast answer wins.
func TestGatewayHedgesSlowOwner(t *testing.T) {
	fc := newFakeCluster(t, 2)
	opts := singleAttempt()
	opts.HedgeAfter = 20 * time.Millisecond
	g, srv := newTestGateway(t, fc, opts)

	order := ownerOf(t, g, testSim)
	fc.setRole(order[0], func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(400 * time.Millisecond)
		answer("{\"from\":\"slow\"}\n", "miss")(w, r)
	})
	fc.setRole(order[1], answer("{\"from\":\"fast\"}\n", "hit"))

	resp := postSim(t, srv.URL, testSim)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "fast") {
		t.Fatalf("hedged request got %d %q, want the fast shard's answer", resp.StatusCode, body)
	}
	if got := resp.Header.Get(serve.ShardHeader); got != order[1] {
		t.Fatalf("served by %s, want the hedge target %s", got, order[1])
	}
	snap := g.Registry().Snapshot()
	if snap.Get("gw.hedges") != 1 || snap.Get("gw.hedge.wins") != 1 {
		t.Fatalf("hedges=%d wins=%d, want 1/1", snap.Get("gw.hedges"), snap.Get("gw.hedge.wins"))
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestGatewayFailoverProbesOwnerCache: when the owner's compute path
// fails but its cache still answers probes (the breaker-open,
// serving-bounded-stale regime), a failover serves the owner's cached
// bytes instead of recomputing on another shard.
func TestGatewayFailoverProbesOwnerCache(t *testing.T) {
	fc := newFakeCluster(t, 2)
	g, srv := newTestGateway(t, fc, singleAttempt())

	order := ownerOf(t, g, testSim)
	fc.setRole(order[0], func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(serve.CacheOnlyHeader) != "" {
			w.Header().Set("X-Tcord-Cache", "stale")
			w.Header().Set("Warning", `110 tcord "response is stale"`)
			io.WriteString(w, "{\"from\":\"owner-cache\"}\n")
			return
		}
		fail(http.StatusServiceUnavailable, "breaker_open")(w, r)
	})
	fc.setRole(order[1], answer("{\"from\":\"recomputed\"}\n", "miss"))

	resp := postSim(t, srv.URL, testSim)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "owner-cache") {
		t.Fatalf("failover got %d %q, want the owner's cached value", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Tcord-Cache"); got != "stale" {
		t.Fatalf("X-Tcord-Cache = %q, want stale", got)
	}
	if got := resp.Header.Get(serve.ShardHeader); got != order[0] {
		t.Fatalf("served by %s, want the owner %s (via cache probe)", got, order[0])
	}
	snap := g.Registry().Snapshot()
	if snap.Get("gw.failovers") != 1 || snap.Get("gw.probe.hits") != 1 {
		t.Fatalf("failovers=%d probeHits=%d, want 1/1", snap.Get("gw.failovers"), snap.Get("gw.probe.hits"))
	}
}

// TestGatewayFailoverComputesOnMiss: with the owner fully broken (probe
// included), the next shard on the ring computes the result.
func TestGatewayFailoverComputesOnMiss(t *testing.T) {
	fc := newFakeCluster(t, 2)
	g, srv := newTestGateway(t, fc, singleAttempt())

	order := ownerOf(t, g, testSim)
	fc.setRole(order[0], fail(http.StatusInternalServerError, "internal"))
	fc.setRole(order[1], answer("{\"from\":\"recomputed\"}\n", "miss"))

	resp := postSim(t, srv.URL, testSim)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "recomputed") {
		t.Fatalf("failover got %d %q, want the successor's computation", resp.StatusCode, body)
	}
	if got := resp.Header.Get(serve.ShardHeader); got != order[1] {
		t.Fatalf("served by %s, want the successor %s", got, order[1])
	}
	snap := g.Registry().Snapshot()
	if snap.Get("gw.probe.hits") != 0 {
		t.Fatalf("probeHits=%d, want 0: the owner had nothing cached", snap.Get("gw.probe.hits"))
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestGatewayBreakerRoutesAroundDeadShard: repeated failures open the
// dead shard's breaker and traffic stops knocking on its door, while
// every caller keeps getting answers.
func TestGatewayBreakerRoutesAroundDeadShard(t *testing.T) {
	fc := newFakeCluster(t, 2)
	opts := singleAttempt()
	opts.Breaker = &resilience.BreakerConfig{Window: 4, MinSamples: 2, FailureRatio: 0.5, Cooldown: time.Hour}
	g, srv := newTestGateway(t, fc, opts)

	order := ownerOf(t, g, testSim)
	for _, u := range fc.urls {
		fc.setRole(u, answer(fmt.Sprintf("{\"from\":%q}\n", u), "miss"))
	}
	// Kill the owner outright: connection-refused from here on.
	for _, s := range fc.servers {
		if s.URL == order[0] {
			s.CloseClientConnections()
			s.Close()
		}
	}
	for i := 0; i < 5; i++ {
		resp := postSim(t, srv.URL, testSim)
		body := readBody(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d %q — a dead shard must be invisible to callers", i, resp.StatusCode, body)
		}
	}
	// The breaker tripped: later requests route straight to the healthy
	// shard, so failovers stop growing.
	resp, err := http.Get(srv.URL + "/v1/ring")
	if err != nil {
		t.Fatal(err)
	}
	var info RingInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, sh := range info.Shards {
		if sh.Name == order[0] && sh.Breaker != "open" {
			t.Fatalf("dead shard's breaker is %q after 5 failures, want open", sh.Breaker)
		}
	}
	before := g.Registry().Snapshot().Get("gw.failovers")
	for i := 0; i < 3; i++ {
		resp := postSim(t, srv.URL, testSim)
		readBody(t, resp)
	}
	if after := g.Registry().Snapshot().Get("gw.failovers"); after != before {
		t.Fatalf("failovers grew %d -> %d with the breaker open; the dead shard is still being tried", before, after)
	}
}

// TestGatewayChaosProxyAbsorbed: faults injected at resilience.SiteProxy
// (aborting upstream attempts inside the gateway) are fully absorbed by
// failover — callers never see one.
func TestGatewayChaosProxyAbsorbed(t *testing.T) {
	fc := newFakeCluster(t, 3)
	for _, u := range fc.urls {
		fc.setRole(u, answer(fmt.Sprintf("{\"from\":%q}\n", u), "miss"))
	}
	reg := stats.NewRegistry()
	inj := resilience.NewInjector(42).Meter(reg)
	inj.Arm(resilience.SiteProxy, resilience.FaultPlan{Rate: 0.5})
	opts := singleAttempt()
	opts.Registry = reg
	opts.Chaos = inj
	_, srv := newTestGateway(t, fc, opts)

	for i := 0; i < 40; i++ {
		req := testSim
		req.TileCacheKB = 16 + i
		resp := postSim(t, srv.URL, req)
		body := readBody(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d %q under SiteProxy chaos", i, resp.StatusCode, body)
		}
	}
	if got := reg.Snapshot().Get("chaos.gw.proxy.injected"); got == 0 {
		t.Fatal("the injector never fired; the chaos plan is not exercising the proxy path")
	}
}

// TestGatewaySweepFallsBackItemByItem: a shard whose sweep endpoint is
// broken degrades to per-item routing; the merged response still carries
// every run in order.
func TestGatewaySweepFallsBackItemByItem(t *testing.T) {
	fc := newFakeCluster(t, 2)
	g, srv := newTestGateway(t, fc, singleAttempt())

	items := make([]serve.SimulateRequest, 6)
	for i := range items {
		items[i] = testSim
		items[i].TileCacheKB = 16 << i
	}
	// Both shards answer simulate with their identity; one shard's sweep
	// endpoint is broken.
	broken := fc.urls[0]
	for _, u := range fc.urls {
		u := u
		fc.setRole(u, func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/sweep" {
				if u == broken {
					fail(http.StatusInternalServerError, "internal")(w, r)
					return
				}
				var req serve.SweepRequest
				json.NewDecoder(r.Body).Decode(&req)
				runs := make([]json.RawMessage, len(req.Items))
				for i, it := range req.Items {
					runs[i] = json.RawMessage(fmt.Sprintf("{\"kb\":%d,\"via\":\"sweep\"}", it.TileCacheKB))
				}
				w.Header().Set("Content-Type", "application/json")
				json.NewEncoder(w).Encode(serve.SweepResponse{Runs: runs})
				return
			}
			var req serve.SimulateRequest
			json.NewDecoder(r.Body).Decode(&req)
			fmt.Fprintf(w, "{\"kb\":%d,\"via\":\"simulate\"}\n", req.TileCacheKB)
		})
	}

	body, err := json.Marshal(serve.SweepRequest{Items: items})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d: %s", resp.StatusCode, raw)
	}
	var sr struct {
		Runs []struct {
			KB  int    `json:"kb"`
			Via string `json:"via"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(raw), &sr); err != nil {
		t.Fatalf("decoding sweep response: %v\n%s", err, raw)
	}
	if len(sr.Runs) != len(items) {
		t.Fatalf("sweep returned %d runs, want %d", len(sr.Runs), len(items))
	}
	brokenOwned := 0
	for i, run := range sr.Runs {
		if run.KB != items[i].TileCacheKB {
			t.Fatalf("run %d is kb=%d, want item order preserved (kb=%d)", i, run.KB, items[i].TileCacheKB)
		}
		key, err := serve.CanonicalKey(items[i])
		if err != nil {
			t.Fatal(err)
		}
		owner := g.shards[g.Ring().Owner(key)].name
		if owner == broken {
			brokenOwned++
			if run.Via != "simulate" {
				t.Fatalf("run %d owned by the broken shard came via %q, want the per-item fallback", i, run.Via)
			}
		}
	}
	if got := g.Registry().Snapshot().Get("gw.sweep.fallbackItems"); got != int64(brokenOwned) {
		t.Fatalf("gw.sweep.fallbackItems = %d, want %d", got, brokenOwned)
	}
}

// TestGatewayDrain: a draining gateway refuses new simulations like a
// draining shard does.
func TestGatewayDrain(t *testing.T) {
	fc := newFakeCluster(t, 1)
	fc.setRole(fc.urls[0], answer("{}\n", "miss"))
	g, srv := newTestGateway(t, fc, singleAttempt())
	if err := g.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The httptest server wraps the same handler, still reachable.
	resp := postSim(t, srv.URL, testSim)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("draining gateway answered %d %q, want 503 draining", resp.StatusCode, body)
	}
}

// postArena drives one /v1/arena request through the gateway.
func postArena(t *testing.T, url string, req serve.ArenaRequest) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/arena", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

var testArena = serve.ArenaRequest{Policies: []string{"LRU", "OPT"}, Benchmarks: []string{"CCS"}, SizeKB: 16}

// arenaOrderOf returns the shard URLs in the gateway's try order for req.
func arenaOrderOf(t *testing.T, g *Gateway, req serve.ArenaRequest) []string {
	t.Helper()
	_, key, err := serve.ArenaKey(req)
	if err != nil {
		t.Fatal(err)
	}
	var order []string
	for _, n := range g.Ring().Successors(key) {
		order = append(order, g.shards[n].name)
	}
	return order
}

// TestGatewayArenaRoutesToOwner: a race lands on the shard owning its
// content address, the cache disposition and shard name pass through, and
// a repeat hits the same owner's cache.
func TestGatewayArenaRoutesToOwner(t *testing.T) {
	fc := newFakeCluster(t, 3)
	for _, u := range fc.urls {
		fc.setRole(u, answer(fmt.Sprintf("{\"from\":%q}\n", u), "miss"))
	}
	g, srv := newTestGateway(t, fc, singleAttempt())

	want := arenaOrderOf(t, g, testArena)[0]
	resp := postArena(t, srv.URL, testArena)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(serve.ShardHeader); got != want {
		t.Fatalf("served by %s, ring owner is %s", got, want)
	}
	if got := resp.Header.Get("X-Tcord-Cache"); got != "miss" {
		t.Fatalf("X-Tcord-Cache = %q, want the shard's disposition", got)
	}
	if !strings.Contains(body, want) {
		t.Fatalf("body %q did not come from owner %s", body, want)
	}
}

// TestGatewayArenaFailsOver: a broken owner's race fails over along the
// ring; a 4xx from the owner, by contrast, passes straight through — every
// shard would reject the same request the same way.
func TestGatewayArenaFailsOver(t *testing.T) {
	fc := newFakeCluster(t, 2)
	g, srv := newTestGateway(t, fc, singleAttempt())

	order := arenaOrderOf(t, g, testArena)
	fc.setRole(order[0], fail(http.StatusInternalServerError, "internal"))
	fc.setRole(order[1], answer("{\"from\":\"successor\"}\n", "miss"))

	resp := postArena(t, srv.URL, testArena)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "successor") {
		t.Fatalf("failover got %d %q, want the successor's race", resp.StatusCode, body)
	}
	if got := resp.Header.Get(serve.ShardHeader); got != order[1] {
		t.Fatalf("served by %s, want the successor %s", got, order[1])
	}

	fc.setRole(order[0], fail(http.StatusBadRequest, "invalid_request"))
	resp = postArena(t, srv.URL, testArena)
	readBody(t, resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("owner 400 answered %d at the gateway, want pass-through", resp.StatusCode)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
