package cluster

import (
	"bufio"
	"context"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"tcor/internal/resilience"
	"tcor/internal/stats"
)

// Gateway telemetry rollup. A cluster's observability otherwise stops at
// the process boundary: three shards and a gateway are four unrelated
// /metrics pages. GET /v1/cluster/metrics scrapes every shard's Prometheus
// endpoint concurrently (bounded, breaker-aware) and re-emits the union as
// one page where every shard series carries a `shard="shard-<i>"` label,
// followed by gateway-computed fleet aggregates under `shard="fleet"`:
// counters and gauges summed, histograms merged bucket-by-bucket through
// stats.Histogram.Merge after parsing them back out of the text format.
// A shard that cannot be scraped degrades the page to a partial one —
// tcord_cluster_shard_up{shard=...} drops to 0, a Warning header flags the
// response — instead of failing it. GET /v1/cluster/health is the JSON
// companion: per-shard readyz/breaker state plus the ring's shape.

// MetricsScrapeTimeout bounds the whole shard scrape fan-out, and
// metricsScrapeParallel bounds how many shards are scraped at once.
const (
	MetricsScrapeTimeout  = 5 * time.Second
	metricsScrapeParallel = 4
)

// promSample is one exposition line: the full sample name (family name
// plus any _bucket/_sum/_count suffix), the label pairs inside the braces
// (without braces, "" when unlabeled) and the integer value.
type promSample struct {
	name   string
	labels string
	value  int64
}

// promFamily is one metric family as scraped from a shard, samples in page
// order (bucket bounds ascending, as the emitter writes them).
type promFamily struct {
	typ     string // counter | gauge | histogram
	samples []promSample
}

// parsePromText parses the repo's own Prometheus text exposition (integer
// values, one TYPE comment per family) into families by name. It is not a
// general scraper — it round-trips what stats.WritePrometheus emits.
func parsePromText(text string) (map[string]*promFamily, error) {
	fams := make(map[string]*promFamily)
	var current string
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				return nil, fmt.Errorf("cluster: malformed TYPE line %q", line)
			}
			current = fields[2]
			fams[current] = &promFamily{typ: fields[3]}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return nil, fmt.Errorf("cluster: malformed sample line %q", line)
		}
		val, err := strconv.ParseInt(line[sp+1:], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("cluster: sample %q: %v", line, err)
		}
		name, labels := line[:sp], ""
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				return nil, fmt.Errorf("cluster: malformed labels in %q", line)
			}
			labels = name[i+1 : len(name)-1]
			name = name[:i]
		}
		fam := fams[familyOf(name, current)]
		if fam == nil {
			return nil, fmt.Errorf("cluster: sample %q precedes its TYPE line", line)
		}
		fam.samples = append(fam.samples, promSample{name: name, labels: labels, value: val})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return fams, nil
}

// familyOf maps a sample name back to its family: histogram samples carry
// _bucket/_sum/_count suffixes on the family name announced by the TYPE
// line; everything else is its own family.
func familyOf(name, current string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if strings.TrimSuffix(name, suffix) == current {
			return current
		}
	}
	return name
}

// histogramFromFamily rebuilds a HistogramSnapshot from a scraped
// histogram family: cumulative le buckets de-accumulate into per-bucket
// counts via the shared BucketUpper bounds (every daemon runs the same 64
// log-2 buckets), observations beyond the highest listed bound land in the
// top bucket, and _sum/_count restore verbatim.
func histogramFromFamily(fam *promFamily) (stats.HistogramSnapshot, error) {
	var s stats.HistogramSnapshot
	boundIdx := make(map[int64]int, stats.HistogramBuckets-1)
	for i := 0; i < stats.HistogramBuckets-1; i++ {
		boundIdx[stats.BucketUpper(i)] = i
	}
	var prevCum, listedTotal int64
	for _, sm := range fam.samples {
		switch {
		case strings.HasSuffix(sm.name, "_sum"):
			s.Sum = sm.value
		case strings.HasSuffix(sm.name, "_count"):
			s.Count = sm.value
		case strings.HasSuffix(sm.name, "_bucket"):
			le := labelValue(sm.labels, "le")
			if le == "+Inf" {
				continue // redundant with _count
			}
			bound, err := strconv.ParseInt(le, 10, 64)
			if err != nil {
				return s, fmt.Errorf("cluster: le=%q: %v", le, err)
			}
			idx, ok := boundIdx[bound]
			if !ok {
				return s, fmt.Errorf("cluster: le=%q is not a shared bucket bound", le)
			}
			s.Buckets[idx] = sm.value - prevCum
			prevCum = sm.value
			listedTotal = sm.value
		}
	}
	if rest := s.Count - listedTotal; rest > 0 {
		s.Buckets[stats.HistogramBuckets-1] += rest
	}
	return s, nil
}

// labelValue extracts one label's value from a rendered label-pair list.
func labelValue(labels, key string) string {
	for _, pair := range strings.Split(labels, ",") {
		if k, v, ok := strings.Cut(pair, "="); ok && k == key {
			return strings.Trim(v, `"`)
		}
	}
	return ""
}

// shardScrape is one shard's scrape result.
type shardScrape struct {
	fams map[string]*promFamily
	err  error
}

// scrapeShards pulls every shard's /metrics page, at most
// metricsScrapeParallel at a time. A shard whose breaker is open is not
// scraped (it is already considered down, and a scrape must never pollute
// the breaker window routing decisions read).
func (g *Gateway) scrapeShards(ctx context.Context) []shardScrape {
	out := make([]shardScrape, len(g.shards))
	sem := make(chan struct{}, metricsScrapeParallel)
	var wg sync.WaitGroup
	for _, sh := range g.shards {
		if sh.brk.State() == resilience.Open {
			out[sh.idx].err = fmt.Errorf("skipped: breaker open")
			continue
		}
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			text, err := sh.client.MetricsText(ctx)
			if err != nil {
				out[sh.idx].err = err
				return
			}
			fams, err := parsePromText(string(text))
			if err != nil {
				out[sh.idx].err = err
				return
			}
			out[sh.idx].fams = fams
		}(sh)
	}
	wg.Wait()
	return out
}

func (g *Gateway) handleClusterMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		g.writeError(w, &gwError{status: http.StatusMethodNotAllowed,
			code: "method_not_allowed", msg: "use GET"})
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), MetricsScrapeTimeout)
	defer cancel()
	scrapes := g.scrapeShards(ctx)

	partial := false
	for _, sc := range scrapes {
		if sc.err != nil {
			partial = true
		}
	}
	if partial {
		w.Header().Set("Warning", `199 tcord "partial rollup: some shards unreachable"`)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	var b strings.Builder
	// The per-shard availability flags lead the page: a reader (or CI)
	// checks them before trusting the union below.
	b.WriteString("# TYPE tcord_cluster_shard_up gauge\n")
	for i, sc := range scrapes {
		up := 1
		if sc.err != nil {
			up = 0
		}
		fmt.Fprintf(&b, "tcord_cluster_shard_up{shard=\"shard-%d\"} %d\n", i, up)
	}

	// Union of family names across every reachable shard, sorted so the
	// page is deterministic regardless of scrape completion order.
	famTypes := make(map[string]string)
	for _, sc := range scrapes {
		for name, fam := range sc.fams {
			famTypes[name] = fam.typ
		}
	}
	names := make([]string, 0, len(famTypes))
	for name := range famTypes {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		typ := famTypes[name]
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, typ)
		// Every shard's own series, shard-labeled, in ring order.
		for i, sc := range scrapes {
			fam := sc.fams[name]
			if fam == nil {
				continue
			}
			label := fmt.Sprintf("shard=%q", "shard-"+strconv.Itoa(i))
			for _, sm := range fam.samples {
				if sm.labels == "" {
					fmt.Fprintf(&b, "%s{%s} %d\n", sm.name, label, sm.value)
				} else {
					fmt.Fprintf(&b, "%s{%s,%s} %d\n", sm.name, sm.labels, label, sm.value)
				}
			}
		}
		// The fleet aggregate: summed counters/gauges, merged histograms.
		switch typ {
		case "histogram":
			fleet := &stats.Histogram{}
			ok := true
			for _, sc := range scrapes {
				fam := sc.fams[name]
				if fam == nil {
					continue
				}
				snap, err := histogramFromFamily(fam)
				if err != nil {
					g.logger.Warn("rollup: unmergeable histogram", "family", name, "err", err)
					ok = false
					break
				}
				fleet.Merge(stats.HistogramFromSnapshot(snap))
			}
			if ok {
				stats.WritePromHistogramSamples(&b, name, `shard="fleet"`, fleet.Snapshot()) //nolint:errcheck // strings.Builder never errs
			}
		default:
			var sum int64
			for _, sc := range scrapes {
				if fam := sc.fams[name]; fam != nil {
					for _, sm := range fam.samples {
						sum += sm.value
					}
				}
			}
			fmt.Fprintf(&b, "%s{shard=\"fleet\"} %d\n", name, sum)
		}
	}
	w.Write([]byte(b.String())) //nolint:errcheck // client gone is its own problem
}

// ClusterHealth is the body of GET /v1/cluster/health: the gateway's view
// of every shard plus its own lifecycle state.
type ClusterHealth struct {
	Status   string        `json:"status"` // ok | degraded | down
	Draining bool          `json:"draining"`
	VNodes   int           `json:"vnodes"`
	Shards   []ShardHealth `json:"shards"`
}

// ShardHealth is one shard's rollup row: ring name, router-side breaker
// position and the live readyz verdict (not probed when the breaker is
// open — the router already considers the shard down).
type ShardHealth struct {
	Name    string `json:"name"`
	Index   int    `json:"index"`
	Breaker string `json:"breaker"`
	Ready   bool   `json:"ready"`
	Detail  string `json:"detail,omitempty"`
}

func (g *Gateway) handleClusterHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		g.writeError(w, &gwError{status: http.StatusMethodNotAllowed,
			code: "method_not_allowed", msg: "use GET"})
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), MetricsScrapeTimeout)
	defer cancel()

	health := ClusterHealth{
		Draining: g.draining.Load(),
		VNodes:   g.opts.VNodes,
		Shards:   make([]ShardHealth, len(g.shards)),
	}
	sem := make(chan struct{}, metricsScrapeParallel)
	var wg sync.WaitGroup
	for _, sh := range g.shards {
		row := &health.Shards[sh.idx]
		row.Name, row.Index, row.Breaker = sh.name, sh.idx, sh.brk.State().String()
		if sh.brk.State() == resilience.Open {
			row.Detail = "breaker open"
			continue
		}
		wg.Add(1)
		go func(sh *shard, row *ShardHealth) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if err := sh.client.Ready(ctx); err != nil {
				row.Detail = err.Error()
				return
			}
			row.Ready = true
		}(sh, row)
	}
	wg.Wait()

	ready := 0
	for _, row := range health.Shards {
		if row.Ready {
			ready++
		}
	}
	switch {
	case ready == len(health.Shards) && !health.Draining:
		health.Status = "ok"
	case ready > 0:
		health.Status = "degraded"
	default:
		health.Status = "down"
	}
	g.writeJSON(w, health)
}
