// Scene3d: drive the WHOLE pipeline of paper Fig. 2 end to end on a real 3D
// scene — meshes, camera, transforms — instead of a calibrated synthetic
// workload. The Geometry Pipeline (vertex transform, frustum culling,
// clipping, backface culling, viewport mapping) produces the screen-space
// primitive stream; the Tiling Engine bins it into the Parameter Buffer; the
// full-system simulator then compares the baseline Tile Cache against TCOR
// on the resulting traffic.
//
// The scene is a small animated "city": a large ground plane, a grid of
// cube buildings, and an orbiting camera. Two frames are rendered so the
// camera movement re-bins the geometry.
//
//	go run ./examples/scene3d
package main

import (
	"fmt"
	"log"
	"math"

	"tcor/internal/geom"
	"tcor/internal/geometry"
	"tcor/internal/gpu"
	"tcor/internal/workload"
)

func buildScene(angle float32) *geometry.Scene {
	scene := &geometry.Scene{
		Camera: geometry.Camera{
			Eye: geom.Vec3{
				X: 18 * float32(math.Cos(float64(angle))),
				Y: 9,
				Z: 18 * float32(math.Sin(float64(angle))),
			},
			Target: geom.Vec3{X: 0, Y: 0, Z: 0},
			Up:     geom.Vec3{X: 0, Y: 1, Z: 0},
			FovY:   math.Pi / 3,
			Aspect: 1960.0 / 768.0,
			Near:   0.5,
			Far:    200,
		},
	}
	// Ground plane first (painter's order: background before buildings).
	scene.Objects = append(scene.Objects, geometry.Object{
		Mesh:      geometry.Plane(60, 0),
		Transform: geom.Identity(),
	})
	// A city block of cubes with varying heights.
	cube := geometry.Cube()
	for gx := -4; gx <= 4; gx++ {
		for gz := -4; gz <= 4; gz++ {
			h := float32(1 + (gx*gx+gz*gz*3)%5)
			t := geom.Translate(float32(gx)*4, h, float32(gz)*4).
				Mul(geom.ScaleUniform(1)).
				Mul(scaleXYZ(1.2, h, 1.2))
			scene.Objects = append(scene.Objects, geometry.Object{Mesh: cube, Transform: t})
		}
	}
	return scene
}

// scaleXYZ builds a non-uniform scale matrix.
func scaleXYZ(x, y, z float32) geom.Mat4 {
	m := geom.Identity()
	m[0], m[5], m[10] = x, y, z
	return m
}

func main() {
	screen := geom.DefaultScreen()
	cfg := geometry.PipelineConfig{Screen: screen, CullBackfaces: true}

	// Render two frames with an orbiting camera.
	var frames []workload.Frame
	for f := 0; f < 2; f++ {
		scene := buildScene(0.6 + 0.05*float32(f))
		prims, st, err := geometry.Run(scene, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("frame %d: %d triangles in -> %d out (%d frustum-culled, %d backface-culled, %d clipped)\n",
			f, st.TrianglesIn, st.TrianglesOut, st.CulledFrustum, st.CulledBackfacing, st.Clipped)
		frames = append(frames, workload.Frame{Prims: prims})
	}

	// Non-geometric workload parameters for the raster/texture model.
	spec := workload.Spec{
		Name: "City Flyover", Alias: "C3D", Genre: "Demo", ThreeD: true,
		PBFootprintMiB: 0.1, AvgPrimReuse: 2, // informational only here
		TextureMiB: 3, ShaderInstrPerPixel: 10, MeanAttrs: 2, Frames: 2, Seed: 1,
	}
	scene, err := workload.NewSceneFromFrames(spec, screen, frames)
	if err != nil {
		log.Fatal(err)
	}
	st := scene.Stats()
	fmt.Printf("\nbinned: %d primitives, re-use %.2f tiles/primitive, %.0f KiB Parameter Buffer\n\n",
		st.Primitives, st.AvgPrimReuse, float64(st.PBFootprint)/1024)

	for _, c := range []struct {
		name string
		cfg  gpu.Config
	}{
		{"baseline", gpu.Baseline(64 * 1024)},
		{"TCOR", gpu.TCOR(64 * 1024)},
	} {
		res, err := gpu.Simulate(scene, c.cfg)
		if err != nil {
			log.Fatal(err)
		}
		pb := res.L2In.PB()
		pbm := res.DRAMIn.PB()
		fmt.Printf("%-9s PB->L2 %6d  PB->mem %5d  hier %.3f mJ  PPC %.3f  FPS %.1f\n",
			c.name, pb.Reads+pb.Writes, pbm.Reads+pbm.Writes,
			res.MemHierarchyPJ/1e9, res.PPC(), res.FPS(600e6))
	}
}
