// Serve runs the serving layer end to end in one process: it starts a
// tcord server on a loopback port, talks to it through the typed client,
// shows the content-addressed result cache collapsing a repeated request,
// fans a baseline-vs-TCOR comparison through /v1/sweep, and drains.
//
// The same flow works against a real daemon — replace the in-process
// server with `go run ./cmd/tcord -addr :8344` and point the client at
// "http://localhost:8344".
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"tcor"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}

func run() error {
	srv := tcor.NewServer(tcor.ServeOptions{Workers: 2, CacheEntries: 16})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	c := tcor.NewServiceClient("http://"+addr, nil)
	v, err := c.Version(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("serving on %s (%s, %s)\n\n", addr, v.Version, v.GoVersion)

	// The same request twice: the first simulates, the second is served
	// from the content-addressed cache, byte-identical.
	req := tcor.SimulateRequest{Benchmark: "CCS", Config: "tcor", TileCacheKB: 64, Frames: 1, Check: true}
	for i := 0; i < 2; i++ {
		rr, outcome, err := c.Simulate(ctx, req)
		if err != nil {
			return err
		}
		fmt.Printf("%-9s %s/%s: PPC %.2f, FPS %.1f, DRAM reads %d (cache %s)\n",
			"simulate", rr.Benchmark, rr.Config, rr.PPC, rr.FPS, rr.MemReads, outcome)
	}

	// A sweep batches items through the server's bounded worker pool and
	// returns results in item order.
	runs, err := c.Sweep(ctx, tcor.SweepRequest{Items: []tcor.SimulateRequest{
		{Benchmark: "CCS", Config: "baseline", TileCacheKB: 64, Frames: 1},
		{Benchmark: "CCS", Config: "tcor", TileCacheKB: 64, Frames: 1},
	}})
	if err != nil {
		return err
	}
	fmt.Printf("\nsweep: baseline vs TCOR on CCS (64 KiB)\n")
	for _, rr := range runs {
		fmt.Printf("  %-9s PPC %.2f  hierarchy energy %.2f mJ\n", rr.Config, rr.PPC, rr.HierEnergyMJ)
	}
	fmt.Printf("  tiling speedup: %.1fx\n", runs[1].PPC/runs[0].PPC)

	st, err := c.Stats(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("\nserver metrics: %d simulations, %d cache hits, %d misses\n",
		st["serve.simulations.completed"], st["serve.cache.hits"], st["serve.cache.misses"])

	return srv.Shutdown(ctx)
}
