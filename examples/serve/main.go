// Serve runs the serving layer end to end: it starts a tcord server (in
// process by default, or points at a running daemon with -addr), talks to
// it through the typed retrying client, shows the content-addressed result
// cache collapsing a repeated request, fans a baseline-vs-TCOR comparison
// through /v1/sweep, and drains. In the in-process mode it also walks the
// multi-tenant + durable-jobs surface: a tenant-authenticated client
// submits a sweep with ?async=1, polls the job, and proves the stored
// result is byte-identical to the synchronous sweep.
//
// It doubles as a resilience drill. With -n it drives that many sequential
// simulate calls and exits non-zero if any of them surfaces an error — run
// it against `tcord -chaos "rate=0.2,lat=5ms,codes=500|503"` to prove the
// retrying client rides out injected faults:
//
//	go run ./cmd/tcord -addr :8344 -chaos "rate=0.2,codes=500|503" &
//	go run ./examples/serve -addr http://localhost:8344 -n 200
//
// -retry=false turns the retry layer off, which against a chaos daemon
// makes the drill fail — the difference is the point.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"tcor"
)

func main() {
	addr := flag.String("addr", "", "base URL of a running tcord daemon (empty = start one in process)")
	n := flag.Int("n", 0, "drive this many sequential simulate calls and report; 0 = demo flow")
	retry := flag.Bool("retry", true, "retry transient failures (5xx, 429, transport errors)")
	flag.Parse()
	if err := run(*addr, *n, *retry); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}

func run(addr string, n int, retry bool) error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	var srv *tcor.Server
	baseURL := addr
	inProcess := baseURL == ""
	if inProcess {
		// The in-process daemon runs with a two-tenant roster and a durable
		// job store so the demo can walk the multi-tenant + async surface.
		tenants, err := tcor.ParseTenants([]byte(`{
			"key-acme": {"name": "acme", "weight": 3, "maxInflight": 4},
			"*":        {"name": "default", "weight": 1}
		}`))
		if err != nil {
			return err
		}
		jobsDir, err := os.MkdirTemp("", "tcor-jobs-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(jobsDir)
		srv = tcor.NewServer(tcor.ServeOptions{
			Workers: 2, CacheEntries: 16,
			Tenants: tenants, JobsDir: jobsDir, JobWorkers: 1,
		})
		started, err := srv.Start("127.0.0.1:0")
		if err != nil {
			return err
		}
		baseURL = "http://" + started
	}

	// The retry policy is generous on attempts but tight on delay: against
	// a chaos daemon injecting faults at rate 0.2, ten attempts push the
	// per-call failure probability below 1e-6, so a 200-call drill passes.
	var opts []tcor.ClientOption
	if retry {
		opts = append(opts, tcor.WithClientRetry(tcor.RetryPolicy{
			MaxAttempts: 10,
			BaseDelay:   20 * time.Millisecond,
			MaxDelay:    500 * time.Millisecond,
		}))
	}
	c := tcor.NewServiceClient(baseURL, nil, opts...)

	v, err := c.Version(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("talking to %s (%s, %s)\n\n", baseURL, v.Version, v.GoVersion)

	if n > 0 {
		if err := drill(ctx, c, n); err != nil {
			return err
		}
	} else {
		if err := demo(ctx, c); err != nil {
			return err
		}
		// The tenancy/jobs walk needs the roster and job store only the
		// in-process daemon is guaranteed to have.
		if inProcess {
			if err := tenantsDemo(ctx, baseURL); err != nil {
				return err
			}
		}
	}

	if srv != nil {
		return srv.Shutdown(ctx)
	}
	return nil
}

// drill issues n sequential simulate calls and fails on the first surfaced
// error. Alternating the frame count between two values keeps the server's
// cache from absorbing everything while staying cheap.
func drill(ctx context.Context, c *tcor.ServiceClient, n int) error {
	start := time.Now()
	for i := 0; i < n; i++ {
		req := tcor.SimulateRequest{
			Benchmark: "CCS", Config: "tcor", TileCacheKB: 64, Frames: 1 + i%2,
		}
		if _, _, err := c.Simulate(ctx, req); err != nil {
			return fmt.Errorf("call %d/%d failed: %w", i+1, n, err)
		}
	}
	fmt.Printf("drill: %d/%d simulate calls succeeded in %v\n", n, n, time.Since(start).Round(time.Millisecond))
	return nil
}

// demo walks the serving features: cache coalescing, sweeps, metrics.
func demo(ctx context.Context, c *tcor.ServiceClient) error {
	// The same request twice: the first simulates, the second is served
	// from the content-addressed cache, byte-identical.
	req := tcor.SimulateRequest{Benchmark: "CCS", Config: "tcor", TileCacheKB: 64, Frames: 1, Check: true}
	for i := 0; i < 2; i++ {
		rr, outcome, err := c.Simulate(ctx, req)
		if err != nil {
			return err
		}
		fmt.Printf("%-9s %s/%s: PPC %.2f, FPS %.1f, DRAM reads %d (cache %s)\n",
			"simulate", rr.Benchmark, rr.Config, rr.PPC, rr.FPS, rr.MemReads, outcome)
	}

	// A sweep batches items through the server's bounded worker pool and
	// returns results in item order.
	runs, err := c.Sweep(ctx, tcor.SweepRequest{Items: []tcor.SimulateRequest{
		{Benchmark: "CCS", Config: "baseline", TileCacheKB: 64, Frames: 1},
		{Benchmark: "CCS", Config: "tcor", TileCacheKB: 64, Frames: 1},
	}})
	if err != nil {
		return err
	}
	fmt.Printf("\nsweep: baseline vs TCOR on CCS (64 KiB)\n")
	for _, rr := range runs {
		fmt.Printf("  %-9s PPC %.2f  hierarchy energy %.2f mJ\n", rr.Config, rr.PPC, rr.HierEnergyMJ)
	}
	fmt.Printf("  tiling speedup: %.1fx\n", runs[1].PPC/runs[0].PPC)

	st, err := c.Stats(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("\nserver metrics: %d simulations, %d cache hits, %d misses\n",
		st["serve.simulations.completed"], st["serve.cache.hits"], st["serve.cache.misses"])
	return nil
}

// tenantsDemo walks the multi-tenant + durable-jobs surface: a client
// authenticated as the "acme" tenant submits a sweep asynchronously, polls
// the job to completion, and proves the stored result is byte-identical to
// the same sweep run synchronously — the property that makes async
// submission and crash recovery safe to rely on.
func tenantsDemo(ctx context.Context, baseURL string) error {
	acme := tcor.NewServiceClient(baseURL, nil, tcor.WithClientTenant("key-acme"))

	sweep := tcor.SweepRequest{Items: []tcor.SimulateRequest{
		{Benchmark: "CCS", Config: "baseline", TileCacheKB: 64, Frames: 1},
		{Benchmark: "CCS", Config: "tcor", TileCacheKB: 64, Frames: 1},
		{Benchmark: "GTr", Config: "tcor", TileCacheKB: 64, Frames: 1},
	}}

	// Submission returns immediately with a content-addressed job ID;
	// resubmitting the same body as the same tenant returns the same job.
	job, err := acme.SweepAsync(ctx, sweep)
	if err != nil {
		return err
	}
	fmt.Printf("\nasync sweep submitted as tenant %q: job %s (%s, %d cells)\n",
		job.Tenant, job.ID, job.State, job.TotalCells)

	done, err := acme.WaitJob(ctx, job.ID, 50*time.Millisecond)
	if err != nil {
		return err
	}
	fmt.Printf("job finished: %s, %d/%d cells\n", done.State, done.DoneCells, done.TotalCells)

	asyncBytes, err := acme.JobResult(ctx, job.ID)
	if err != nil {
		return err
	}
	var stored struct {
		Runs []json.RawMessage `json:"runs"`
	}
	if err := json.Unmarshal(asyncBytes, &stored); err != nil {
		return err
	}
	syncRuns, _, err := acme.SweepRaw(ctx, sweep)
	if err != nil {
		return err
	}
	if len(stored.Runs) != len(syncRuns) {
		return fmt.Errorf("async result has %d runs, sync sweep %d", len(stored.Runs), len(syncRuns))
	}
	for i := range syncRuns {
		if !bytes.Equal(stored.Runs[i], syncRuns[i]) {
			return fmt.Errorf("run %d diverged between async and sync execution", i)
		}
	}
	fmt.Printf("async result is byte-identical to the sync sweep (%d runs, %d bytes)\n",
		len(stored.Runs), len(asyncBytes))

	// The job listing is tenant-scoped: acme sees its job, an anonymous
	// caller sees none of it.
	jobs, err := acme.Jobs(ctx)
	if err != nil {
		return err
	}
	anon := tcor.NewServiceClient(baseURL, nil)
	anonJobs, err := anon.Jobs(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("job listings are tenant-scoped: acme sees %d, anonymous sees %d\n",
		len(jobs), len(anonJobs))

	st, err := acme.Stats(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("tenant metrics: acme made %d requests, jobs done %d\n",
		st["serve.tenant.acme.requests"], st["serve.jobs.done"])
	return nil
}
