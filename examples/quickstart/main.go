// Quickstart: synthesize a small mobile-game workload, run it through the
// baseline TBR GPU and through TCOR, and print the paper's headline metrics
// side by side.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"tcor/internal/geom"
	"tcor/internal/gpu"
	"tcor/internal/workload"
)

func main() {
	// Pick a benchmark from the paper's Table II suite. CCS (Candy Crush
	// Saga) is the smallest: ~1500 primitives per frame with high re-use.
	spec, err := workload.ByAlias("CCS")
	if err != nil {
		log.Fatal(err)
	}
	spec.Frames = 2

	// Generate the calibrated scene: deterministic, so every run of this
	// example prints the same numbers.
	scene, err := workload.Generate(spec, geom.DefaultScreen())
	if err != nil {
		log.Fatal(err)
	}
	st := scene.Stats()
	fmt.Printf("workload: %s — %d primitives/frame, %.2f MiB Parameter Buffer, re-use %.2f\n\n",
		spec.Name, st.Primitives, float64(st.PBFootprint)/(1<<20), st.AvgPrimReuse)

	// Simulate both Tile Cache organizations at the paper's 64 KiB budget.
	base, err := gpu.Simulate(scene, gpu.Baseline(64*1024))
	if err != nil {
		log.Fatal(err)
	}
	tc, err := gpu.Simulate(scene, gpu.TCOR(64*1024))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-34s %14s %14s\n", "metric", "baseline", "TCOR")
	row := func(name string, b, t float64, format string) {
		fmt.Printf("%-34s %14s %14s\n", name,
			fmt.Sprintf(format, b), fmt.Sprintf(format, t))
	}
	bPB, tPB := base.L2In.PB(), tc.L2In.PB()
	row("PB accesses to L2", float64(bPB.Reads+bPB.Writes), float64(tPB.Reads+tPB.Writes), "%.0f")
	bM, tM := base.DRAMIn.PB(), tc.DRAMIn.PB()
	row("PB accesses to main memory", float64(bM.Reads+bM.Writes), float64(tM.Reads+tM.Writes), "%.0f")
	row("total main memory accesses", float64(base.DRAM.Reads+base.DRAM.Writes),
		float64(tc.DRAM.Reads+tc.DRAM.Writes), "%.0f")
	row("memory hierarchy energy (mJ)", base.MemHierarchyPJ/1e9, tc.MemHierarchyPJ/1e9, "%.3f")
	row("total GPU energy (mJ)", base.TotalPJ/1e9, tc.TotalPJ/1e9, "%.3f")
	row("tile fetcher prim/cycle", base.PPC(), tc.PPC(), "%.3f")
	row("frames per second", base.FPS(600e6), tc.FPS(600e6), "%.1f")

	fmt.Printf("\nTCOR: %.1f%% less memory-hierarchy energy, %.1fx tiling engine speedup, %+.1f%% FPS\n",
		100*(1-tc.MemHierarchyPJ/base.MemHierarchyPJ),
		tc.PPC()/base.PPC(),
		100*(tc.FPS(600e6)/base.FPS(600e6)-1))
}
