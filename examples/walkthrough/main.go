// Walkthrough: the paper's own illustrative example (§III-C7, Figs. 9/10) —
// three primitives, nine tiles, a cache with room for two primitives —
// stepped through access by access, printing the cache state and L2 traffic
// for LRU and for TCOR's OPT side by side.
//
// Watch for the paper's narrative beats:
//
//   - the third Polygon List Builder write is the first to touch the L2 in
//     both policies, but LRU pays a write-back on eviction while OPT
//     *bypasses* (the new primitive is needed later than everything
//     resident);
//
//   - OPT retains the yellow primitive and turns LRU's tile-2 miss into a
//     hit;
//
//   - at tile 3, OPT evicts the yellow primitive — dead, never used again —
//     while LRU keeps it and pays another refetch at tile 4.
//
//     go run ./examples/walkthrough
package main

import (
	"fmt"
	"log"

	"tcor/internal/experiments"
)

func main() {
	table, err := experiments.Fig910()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(table)

	lru, opt, err := experiments.Fig910Totals()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("L2 accesses: LRU %d, OPT %d — OPT saves %d on a 12-access toy frame.\n",
		lru, opt, lru-opt)
}
