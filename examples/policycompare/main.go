// Policycompare: drive the cache library directly with a Parameter Buffer
// access trace and compare every replacement policy the library implements
// against the optimal OPT and the paper's analytic lower bound.
//
// This is the library-level view behind the paper's Figs. 1 and 13: a
// trace-driven, primitive-granularity simulation where each cache line holds
// one primitive (~192 bytes).
//
//	go run ./examples/policycompare
//	go run ./examples/policycompare -benchmark DDS -ways 4
package main

import (
	"flag"
	"fmt"
	"log"

	"tcor/internal/cache"
	"tcor/internal/geom"
	"tcor/internal/tiling"
	"tcor/internal/trace"
	"tcor/internal/workload"
)

func main() {
	benchmark := flag.String("benchmark", "SoD", "benchmark alias")
	ways := flag.Int("ways", 0, "associativity (0 = fully associative)")
	flag.Parse()

	// Build the PB-Attributes access stream of one binned frame: one write
	// per primitive (the Polygon List Builder), then the Tile Fetcher's
	// reads in Z-order traversal.
	spec, err := workload.ByAlias(*benchmark)
	if err != nil {
		log.Fatal(err)
	}
	spec.Frames = 1
	screen := geom.DefaultScreen()
	scene, err := workload.Generate(spec, screen)
	if err != nil {
		log.Fatal(err)
	}
	trav, err := tiling.NewTraversal(screen, tiling.OrderZ)
	if err != nil {
		log.Fatal(err)
	}
	binning, err := tiling.Bin(screen, trav, scene.Frame(0).Prims)
	if err != nil {
		log.Fatal(err)
	}
	var tr trace.Trace
	for p := range binning.PrimTiles {
		tr = append(tr, trace.Access{Key: trace.Key(p), Write: true})
	}
	for _, tile := range trav.Seq {
		for _, e := range binning.Lists[tile] {
			tr = append(tr, trace.Access{Key: trace.Key(e.Prim)})
		}
	}
	trace.AnnotateNextUse(tr) // the OPT policy needs Belady next-use indices

	tp := trace.UniqueKeys(tr)
	fmt.Printf("%s: %d accesses (%d writes, %d reads), %d primitives\n\n",
		*benchmark, len(tr), trace.Writes(tr), trace.Reads(tr), tp)

	policies := []func() cache.Policy{
		cache.NewLRU, cache.NewMRU, cache.NewFIFO,
		cache.NewSRRIP,
		func() cache.Policy { return cache.NewBRRIP(1) },
		func() cache.Policy { return cache.NewDRRIP(1) },
		func() cache.Policy { return cache.NewRandom(1) },
		cache.NewOPT,
	}
	// Tree-PLRU needs a power-of-two associativity; include it only when
	// the requested geometry allows it.
	if w := *ways; w > 0 && w&(w-1) == 0 {
		policies = append(policies[:3:3], append([]func() cache.Policy{cache.NewPLRU}, policies[3:]...)...)
	}

	fmt.Printf("%-10s", "size(KB)")
	for _, np := range policies {
		fmt.Printf("%12s", np().Name())
	}
	fmt.Printf("%12s\n", "LowerBound")

	for _, sizeKB := range []int{16, 32, 48, 64, 96, 128} {
		cp := sizeKB * 1024 / 192 // capacity in ~192-byte primitives
		lines := cp
		w := *ways
		if w > 0 {
			lines = cp / w * w
			if lines < w {
				lines = w
			}
		}
		fmt.Printf("%-10d", sizeKB)
		for _, np := range policies {
			st, err := cache.Simulate(cache.Config{
				Lines: lines, Ways: w, WriteAllocate: true,
			}, np(), tr)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%12.3f", st.MissRatio())
		}
		fmt.Printf("%12.3f\n", cache.TraceLowerBoundMissRatio(tr, cp))
	}
	fmt.Println("\n(miss ratio; lower is better — OPT must dominate, and nothing beats the bound)")
}
