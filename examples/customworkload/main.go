// Customworkload: define your own game profile — screen, Parameter Buffer
// footprint, primitive re-use, texture working set, shader length — generate
// a calibrated scene for it, and evaluate how much TCOR would save on your
// title, including the L2-enhancement ablation.
//
//	go run ./examples/customworkload
package main

import (
	"fmt"
	"log"

	"tcor/internal/geom"
	"tcor/internal/gpu"
	"tcor/internal/workload"
)

func main() {
	// A hypothetical mid-weight 3D title on a taller screen than Table I.
	spec := workload.Spec{
		Name:                "My Racing Game",
		Alias:               "MRG",
		Genre:               "Racing",
		ThreeD:              true,
		PBFootprintMiB:      0.9, // between CRa and Mze
		AvgPrimReuse:        2.2,
		TextureMiB:          4.0,
		ShaderInstrPerPixel: 14,
		MeanAttrs:           1.4,
		Frames:              2,
		Seed:                20260704,
	}
	screen := geom.Screen{Width: 1280, Height: 720, TileSize: 32}

	scene, err := workload.Generate(spec, screen)
	if err != nil {
		log.Fatal(err)
	}
	st := scene.Stats()
	fmt.Printf("%s on %dx%d: %d primitives, %.2f MiB PB (target %.2f), re-use %.2f (target %.2f)\n\n",
		spec.Name, screen.Width, screen.Height, st.Primitives,
		float64(st.PBFootprint)/(1<<20), spec.PBFootprintMiB,
		st.AvgPrimReuse, spec.AvgPrimReuse)

	// Configurations must agree on the screen.
	mk := func(c gpu.Config) gpu.Config {
		c.Screen = screen
		return c
	}
	configs := []struct {
		name string
		cfg  gpu.Config
	}{
		{"baseline", mk(gpu.Baseline(64 * 1024))},
		{"TCOR without L2 enhancements", mk(gpu.TCORNoL2(64 * 1024))},
		{"TCOR", mk(gpu.TCOR(64 * 1024))},
		{"TCOR, 128 KiB", mk(gpu.TCOR(128 * 1024))},
	}

	var basePJ float64
	var baseMem int64
	for i, c := range configs {
		res, err := gpu.Simulate(scene, c.cfg)
		if err != nil {
			log.Fatal(err)
		}
		pbMem := res.DRAMIn.PB()
		memTotal := res.DRAM.Reads + res.DRAM.Writes
		if i == 0 {
			basePJ = res.MemHierarchyPJ
			baseMem = memTotal
		}
		fmt.Printf("%-30s  hier energy %.3f mJ (%5.1f%% vs baseline)  PB->mem %6d  mem total %8d (%5.1f%%)  PPC %.3f\n",
			c.name, res.MemHierarchyPJ/1e9,
			100*res.MemHierarchyPJ/basePJ,
			pbMem.Reads+pbMem.Writes,
			memTotal, 100*float64(memTotal)/float64(baseMem),
			res.PPC())
	}
	fmt.Println("\n(the paper's Figs. 16/20 pattern: the larger your geometry footprint, the more TCOR saves)")
}
