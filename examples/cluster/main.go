// Cluster runs the sharded serving layer end to end, all in process: it
// starts three tcord shard daemons on loopback ports, fronts them with the
// consistent-hash gateway, and drives the single-daemon API through it.
// The ring decides placement from each request's content address, so the
// demo first predicts — with NewRing and CanonicalRequestKey, no gateway
// involved — which shard will serve each request, then confirms the
// prediction against the X-Tcord-Shard header. It fans a sweep across the
// shards (the merged bytes are identical to a single daemon's), shuts one
// shard down mid-demo to show failover keeping every request a 200, and
// finishes with the gateway's own routing counters.
//
//	go run ./examples/cluster
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"tcor"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cluster:", err)
		os.Exit(1)
	}
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	// Three full serving stacks — the same admission control, result cache
	// and worker pool cmd/tcord runs — each on its own loopback port.
	var shards []*tcor.Server
	var urls []string
	for i := 0; i < 3; i++ {
		s := tcor.NewServer(tcor.ServeOptions{})
		addr, err := s.Start("127.0.0.1:0")
		if err != nil {
			return err
		}
		defer s.Shutdown(context.Background())
		shards = append(shards, s)
		urls = append(urls, "http://"+addr)
		fmt.Printf("shard %d listening on %s\n", i, addr)
	}

	// The gateway speaks the same API as a single daemon; callers cannot
	// tell they are talking to a cluster except for the shard header.
	gw, err := tcor.NewGateway(tcor.GatewayOptions{Shards: urls})
	if err != nil {
		return err
	}
	gwAddr, err := gw.Start("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer gw.Shutdown(context.Background())
	fmt.Printf("gateway listening on %s over %d shards\n\n", gwAddr, len(urls))

	c := tcor.NewServiceClient("http://"+gwAddr, nil)

	// Placement is pure arithmetic over the request's content address —
	// predictable from outside the gateway with the same ring.
	ring, err := tcor.NewRing(urls, 0)
	if err != nil {
		return err
	}
	reqs := []tcor.SimulateRequest{
		{Benchmark: "GTr", Config: "tcor", TileCacheKB: 32, Frames: 1},
		{Benchmark: "CCS", Config: "tcor", TileCacheKB: 32, Frames: 1},
		{Benchmark: "SoD", Config: "baseline", TileCacheKB: 64, Frames: 1},
	}
	fmt.Println("routing: predicted vs served shard")
	for _, req := range reqs {
		key, err := tcor.CanonicalRequestKey(req)
		if err != nil {
			return err
		}
		predicted := urls[ring.Owner(key)]
		rr, outcome, err := c.Simulate(ctx, req)
		if err != nil {
			return err
		}
		served, err := servedBy(ctx, gwAddr, req)
		if err != nil {
			return err
		}
		match := "MATCH"
		if served != predicted {
			match = "MISMATCH"
		}
		fmt.Printf("  %-3s %-8s key %s...  predicted %s  served %s  %s (%s, %.3f prim/cycle)\n",
			req.Benchmark, req.Config, key[:8], predicted, served, match, outcome, rr.PPC)
	}

	// A repeated request is a result-cache hit on the owning shard — the
	// ring sends equal requests to the same place, so the cluster's cache
	// behaves like one daemon's.
	_, outcome, err := c.Simulate(ctx, reqs[0])
	if err != nil {
		return err
	}
	fmt.Printf("\nrepeat of the first request: served from cache (%s)\n\n", outcome)

	// A sweep fans out by owner and merges byte-identically to a single
	// daemon's response; run baseline vs TCOR across the ring.
	var items []tcor.SimulateRequest
	for _, alias := range []string{"CCS", "SoD", "GTr"} {
		for _, cfg := range []string{"baseline", "tcor"} {
			items = append(items, tcor.SimulateRequest{
				Benchmark: alias, Config: cfg, TileCacheKB: 32, Frames: 1,
			})
		}
	}
	runs, err := c.Sweep(ctx, tcor.SweepRequest{Items: items})
	if err != nil {
		return err
	}
	fmt.Println("sweep across the cluster (memory reads, baseline vs tcor):")
	for i := 0; i < len(runs); i += 2 {
		base, tc := runs[i], runs[i+1]
		fmt.Printf("  %-3s  baseline %9d  tcor %9d  (%.1f%% fewer)\n",
			base.Benchmark, base.MemReads, tc.MemReads,
			100*(1-float64(tc.MemReads)/float64(base.MemReads)))
	}

	// Every hop of that sweep carried a traceparent, so the cluster can
	// stitch the gateway's spans and every shard's spans into one Perfetto
	// export. Re-issue the sweep over plain net/http to read the trace ID
	// off the response header, then pull the stitched document.
	traceID, err := sweepTraceID(ctx, gwAddr, tcor.SweepRequest{Items: items})
	if err != nil {
		return err
	}
	doc, err := stitchedTrace(ctx, gwAddr, traceID)
	if err != nil {
		return err
	}
	procs := make(map[int]int)
	spans := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			procs[ev.Pid]++
			spans++
		}
	}
	fmt.Printf("\nstitched trace %s: %d spans across %d processes\n",
		traceID, spans, len(procs))
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" {
			fmt.Printf("  pid %d = %-8s (%d spans)\n", ev.Pid, ev.Args["name"], procs[ev.Pid])
		}
	}

	// Kill the shard that owns the first request and keep serving: the
	// gateway fails over to the ring successors (probing the dead owner's
	// cache first), so callers never see the loss.
	key0, err := tcor.CanonicalRequestKey(reqs[0])
	if err != nil {
		return err
	}
	victim := ring.Owner(key0)
	fmt.Printf("\nshutting down shard %d (%s), the owner of the first request; the cluster keeps answering:\n",
		victim, urls[victim])
	if err := shards[victim].Shutdown(context.Background()); err != nil {
		return err
	}
	for _, req := range reqs {
		rr, _, err := c.Simulate(ctx, req)
		if err != nil {
			return err
		}
		served, err := servedBy(ctx, gwAddr, req)
		if err != nil {
			return err
		}
		fmt.Printf("  %-3s %-8s -> %s (%.3f prim/cycle)\n", req.Benchmark, req.Config, served, rr.PPC)
	}

	// With a shard down, the telemetry rollup degrades loudly instead of
	// silently: the dead shard's up-gauge drops to zero, the page carries a
	// Warning header, and /v1/cluster/health turns degraded.
	if err := showRollup(ctx, gwAddr, victim); err != nil {
		return err
	}

	snap := gw.Registry().Snapshot()
	fmt.Println("\ngateway routing counters:")
	for _, name := range []string{"gw.requests", "gw.responses.2xx", "gw.failovers", "gw.probe.hits", "gw.hedges"} {
		fmt.Printf("  %-18s %d\n", name, snap.Get(name))
	}
	return gw.CheckInvariants()
}

// stitchedDoc is the slice of the Perfetto export the demo reads: complete
// ("X") span events and per-process metadata ("M") rows on pid tracks.
type stitchedDoc struct {
	TraceEvents []struct {
		Name string            `json:"name"`
		Ph   string            `json:"ph"`
		Pid  int               `json:"pid"`
		Args map[string]string `json:"args"`
	} `json:"traceEvents"`
	OtherData map[string]string `json:"otherData"`
}

// sweepTraceID posts a sweep over plain net/http (the typed client hides
// headers) and returns the trace ID the gateway minted for it, from the
// traceparent response header (00-<traceId>-<spanId>-<flags>).
func sweepTraceID(ctx context.Context, gwAddr string, req tcor.SweepRequest) (string, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return "", err
	}
	httpReq, err := http.NewRequestWithContext(ctx, "POST",
		"http://"+gwAddr+"/v1/sweep", bytes.NewReader(payload))
	if err != nil {
		return "", err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(httpReq)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("sweep via gateway: status %d", resp.StatusCode)
	}
	parts := strings.Split(resp.Header.Get("Traceparent"), "-")
	if len(parts) != 4 {
		return "", fmt.Errorf("gateway sent no traceparent header")
	}
	return parts[1], nil
}

// stitchedTrace pulls /v1/cluster/trace/<id> until the export stabilizes:
// spans land when they end, which is after the response that created them
// flushed, so the first fetch can catch the trace mid-assembly.
func stitchedTrace(ctx context.Context, gwAddr, traceID string) (stitchedDoc, error) {
	var last stitchedDoc
	lastSpans := -1
	for i := 0; i < 40; i++ {
		req, err := http.NewRequestWithContext(ctx, "GET",
			"http://"+gwAddr+"/v1/cluster/trace/"+traceID, nil)
		if err != nil {
			return stitchedDoc{}, err
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return stitchedDoc{}, err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return stitchedDoc{}, err
		}
		if resp.StatusCode != http.StatusOK {
			return stitchedDoc{}, fmt.Errorf("cluster trace: status %d: %s", resp.StatusCode, body)
		}
		var doc stitchedDoc
		if err := json.Unmarshal(body, &doc); err != nil {
			return stitchedDoc{}, err
		}
		if n := len(doc.TraceEvents); n == lastSpans {
			return doc, nil
		} else {
			last, lastSpans = doc, n
		}
		time.Sleep(50 * time.Millisecond)
	}
	return last, nil
}

// showRollup prints the cluster-wide telemetry surfaces after a shard
// death: the Prometheus union page flags itself partial and the JSON
// health rollup reports the cluster degraded.
func showRollup(ctx context.Context, gwAddr string, victim int) error {
	req, err := http.NewRequestWithContext(ctx, "GET",
		"http://"+gwAddr+"/v1/cluster/metrics", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	page, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster metrics: status %d", resp.StatusCode)
	}
	fmt.Printf("\ncluster metrics rollup (Warning: %q):\n", resp.Header.Get("Warning"))
	for _, line := range strings.Split(string(page), "\n") {
		if strings.HasPrefix(line, "tcord_cluster_shard_up") ||
			strings.HasPrefix(line, "tcord_serve_http_requests") {
			fmt.Printf("  %s\n", line)
		}
	}

	req, err = http.NewRequestWithContext(ctx, "GET",
		"http://"+gwAddr+"/v1/cluster/health", nil)
	if err != nil {
		return err
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var health struct {
		Status string `json:"status"`
		Shards []struct {
			Index   int    `json:"index"`
			Ready   bool   `json:"ready"`
			Breaker string `json:"breaker"`
		} `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		return err
	}
	fmt.Printf("cluster health: %s (shard %d is down)\n", health.Status, victim)
	for _, row := range health.Shards {
		fmt.Printf("  shard %d: ready=%v breaker=%s\n", row.Index, row.Ready, row.Breaker)
	}
	return nil
}

// servedBy re-issues req through the gateway (a result-cache hit on the
// serving shard) and reports which shard answered, from the gateway's
// X-Tcord-Shard header. The typed client hides headers, so this drops to
// net/http for the one readback.
func servedBy(ctx context.Context, gwAddr string, req tcor.SimulateRequest) (string, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return "", err
	}
	httpReq, err := http.NewRequestWithContext(ctx, "POST",
		"http://"+gwAddr+"/v1/simulate", bytes.NewReader(payload))
	if err != nil {
		return "", err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(httpReq)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("simulate via gateway: status %d", resp.StatusCode)
	}
	return resp.Header.Get("X-Tcord-Shard"), nil
}
