// Command paperfig regenerates the tables and figures of the TCOR paper
// (HPCA 2022) from the simulator.
//
// Usage:
//
//	paperfig -fig 14            # one figure (1, 9, 11..24)
//	paperfig -table 2           # Table I or II
//	paperfig -headline          # the abstract-level aggregate numbers
//	paperfig -all               # everything, in paper order
//	paperfig -all -parallel 8   # same, bounded to 8 concurrent simulations
//	paperfig -frames 2 -benchmarks CCS,SoD -fig 20
//	paperfig -all -timeout 10m  # abort if the full pass exceeds 10 minutes
//	paperfig -all -http :0      # expvar + pprof while the sweep runs
//	paperfig -fig 14 -stats m.json  # dump the runner's memo metrics
//	paperfig -all -checkpoint runs.ckpt  # journal runs; resume after a crash
//	paperfig -arena                     # race every replacement policy vs OPT
//	paperfig -arena -policies LRU,OPT,ARC,Learned -size 32
//	paperfig -arena -frames 1 -curves=false -format json  # daemon-parity bytes
//
// Output is byte-identical at every -parallel level: the sweep engine
// fans simulations out through a bounded worker pool but aggregates
// results in deterministic suite order. In -arena mode, -format json emits
// the report's canonical encoding — the exact bytes POST /v1/arena serves
// for the same roster, suite and capacity (the daemon pins frames to 1, so
// pass -frames 1 for byte parity).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"tcor/internal/arena"
	"tcor/internal/buildinfo"
	"tcor/internal/cache"
	"tcor/internal/experiments"
	"tcor/internal/stats"
	"tcor/internal/workload"
)

// modes is the list of mutually exclusive output-mode flags that are set.
type modes []string

func (m *modes) add(name string, on bool) {
	if on {
		*m = append(*m, name)
	}
}

// conflict rejects combinations of output modes: each run does one thing,
// so "-all -fig 14" is a contradiction, not a precedence puzzle.
func (m modes) conflict() error {
	if len(m) > 1 {
		return fmt.Errorf("conflicting modes -%s: pass exactly one", strings.Join(m, ", -"))
	}
	return nil
}

// parsePolicies splits and validates a -policies list against the policy
// registry, so a typo fails at the flag instead of deep inside the race.
func parsePolicies(csv string) ([]string, error) {
	if csv == "" {
		return nil, nil
	}
	names := strings.Split(csv, ",")
	for i, n := range names {
		n = strings.TrimSpace(n)
		if _, err := cache.CanonicalPolicyName(n); err != nil {
			return nil, fmt.Errorf("unknown policy %q in -policies (have: %s)",
				n, strings.Join(cache.PolicyNames(), ", "))
		}
		names[i] = n
	}
	return names, nil
}

// parseBenchmarks splits and validates a -benchmarks list against the
// suite, so a typo fails loudly instead of silently vanishing from every
// sweep (Runner.Suite drops aliases it does not know).
func parseBenchmarks(csv string) ([]string, error) {
	if csv == "" {
		return nil, nil
	}
	aliases := strings.Split(csv, ",")
	for i, a := range aliases {
		a = strings.TrimSpace(a)
		if _, err := workload.ByAlias(a); err != nil {
			return nil, fmt.Errorf("unknown benchmark %q in -benchmarks (see paperfig -table 2)", a)
		}
		aliases[i] = a
	}
	return aliases, nil
}

// validateNumbers rejects out-of-range numeric flags with a clear error
// instead of clamping or misbehaving downstream.
func validateNumbers(frames, parallel, par, tilePar int, timeout time.Duration) error {
	if frames < 0 {
		return fmt.Errorf("-frames must be non-negative, got %d", frames)
	}
	if parallel < 0 {
		return fmt.Errorf("-parallel must be non-negative, got %d", parallel)
	}
	if tilePar < 0 {
		return fmt.Errorf("-tile-parallel must be non-negative, got %d", tilePar)
	}
	if par < 0 {
		return fmt.Errorf("-par must be non-negative, got %d", par)
	}
	if timeout < 0 {
		return fmt.Errorf("-timeout must be non-negative, got %v", timeout)
	}
	return nil
}

func main() {
	fig := flag.Int("fig", 0, "figure number to regenerate (1, 9, 11-24)")
	table := flag.Int("table", 0, "table number to regenerate (1 or 2)")
	headline := flag.Bool("headline", false, "print the headline aggregate results")
	ablation := flag.String("ablation", "", "run the design-choice ablation on a benchmark alias (e.g. CCS)")
	renderers := flag.String("renderers", "", "run the parallel-renderer scaling study on a benchmark alias")
	related := flag.Bool("related", false, "run the related-work policy comparison (extended Fig. 13)")
	imr := flag.String("imr", "", "compare TBR against immediate-mode rendering on a benchmark alias")
	sweep := flag.String("sweep", "", "run the Tile Cache size sweep on a benchmark alias")
	falseOverlap := flag.String("falseoverlap", "", "compare exact vs bounding-box binning on a benchmark alias")
	tileSize := flag.String("tilesize", "", "run the tile-size sensitivity study on a benchmark alias")
	reuse := flag.String("reuse", "", "print the reuse-interval profile of a benchmark alias")
	arenaMode := flag.Bool("arena", false, "race the replacement-policy arena: ranked report plus miss-ratio-vs-size curves")
	policiesFlag := flag.String("policies", "", "comma-separated policy roster for -arena (default: every registered policy except PLRU; LRU and OPT always race)")
	arenaSize := flag.Float64("size", 0, "headline capacity in KiB for -arena (0 = paper default)")
	arenaWays := flag.Int("ways", 0, "associativity for -arena (0 = fully associative)")
	arenaCurves := flag.Bool("curves", true, "include the Fig. 11-style size sweep in -arena output")
	all := flag.Bool("all", false, "regenerate every table and figure")
	frames := flag.Int("frames", 0, "frames per benchmark (0 = spec default)")
	benchmarks := flag.String("benchmarks", "", "comma-separated benchmark aliases (default: all ten)")
	format := flag.String("format", "text", "output format: text or csv")
	outDir := flag.String("out", "", "also write each artifact as CSV into this directory")
	parallel := flag.Int("parallel", 0, "max concurrent simulations (0 = GOMAXPROCS)")
	tilePar := flag.Int("tile-parallel", 0, "per-tile raster planning workers within each simulation; results are identical at every level (0 or 1 = serial)")
	par := flag.Int("par", 0, "deprecated alias for -parallel")
	timeout := flag.Duration("timeout", 0, "abort the whole run after this duration (0 = no limit)")
	plot := flag.Bool("plot", false, "render policy figures (1, 11, 13) as terminal charts")
	report := flag.String("report", "", "write a full markdown results report to this file")
	statsPath := flag.String("stats", "", "write the runner's memoization/sweep metrics as JSON to this file")
	tracePath := flag.String("trace", "", "write the sweep schedule as Chrome trace_event JSON (chrome://tracing, Perfetto) to this file")
	httpAddr := flag.String("http", "", "serve expvar and pprof on this address while running (e.g. :0)")
	checkpoint := flag.String("checkpoint", "", "journal completed runs to this file and resume from it after a crash")
	version := flag.Bool("version", false, "print the build identity and exit")
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Get())
		return
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "paperfig:", err)
		os.Exit(1)
	}
	if flag.NArg() > 0 {
		fail(fmt.Errorf("unexpected arguments: %s", strings.Join(flag.Args(), " ")))
	}
	if err := validateNumbers(*frames, *parallel, *par, *tilePar, *timeout); err != nil {
		fail(err)
	}
	var m modes
	m.add("fig", *fig != 0)
	m.add("table", *table != 0)
	m.add("headline", *headline)
	m.add("all", *all)
	m.add("ablation", *ablation != "")
	m.add("renderers", *renderers != "")
	m.add("related", *related)
	m.add("imr", *imr != "")
	m.add("sweep", *sweep != "")
	m.add("falseoverlap", *falseOverlap != "")
	m.add("tilesize", *tileSize != "")
	m.add("reuse", *reuse != "")
	m.add("arena", *arenaMode)
	m.add("report", *report != "")
	if err := m.conflict(); err != nil {
		fail(err)
	}
	aliases, err := parseBenchmarks(*benchmarks)
	if err != nil {
		fail(err)
	}
	roster, err := parsePolicies(*policiesFlag)
	if err != nil {
		fail(err)
	}
	if *arenaSize < 0 {
		fail(fmt.Errorf("-size must be non-negative, got %g", *arenaSize))
	}

	jsonOut := false
	switch *format {
	case "text":
	case "csv":
		printTableOut = func(t *experiments.Table) { fmt.Print(t.CSV()) }
	case "json":
		// Only the arena has a canonical JSON encoding shared with the
		// daemon; the table modes stay text/csv.
		if !*arenaMode {
			fail(fmt.Errorf("-format json is only valid with -arena"))
		}
		jsonOut = true
	default:
		fail(fmt.Errorf("unknown format %q (text, csv, json)", *format))
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fail(err)
		}
		inner := printTableOut
		printTableOut = func(t *experiments.Table) {
			inner(t)
			path := filepath.Join(*outDir, slugify(t.Title)+".csv")
			if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "paperfig: writing", path, ":", err)
			}
		}
	}

	workers := *parallel
	if workers == 0 {
		workers = *par
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var tracer *stats.Tracer
	if *tracePath != "" {
		// Every sweep job wraps itself in a span when the runner's context
		// carries a tracer, so the export shows how the schedule packed onto
		// the worker pool.
		tracer = stats.NewTracer(1 << 16)
		ctx = stats.ContextWithTracer(ctx, tracer)
	}
	prewarmPar = workers

	r := experiments.NewRunner()
	r.Frames = *frames
	r.Parallel = workers
	r.TileParallel = *tilePar
	r.Ctx = ctx
	r.Benchmarks = aliases
	if *checkpoint != "" {
		restored, err := r.OpenCheckpoint(*checkpoint)
		if err != nil {
			fail(err)
		}
		defer r.Checkpoint.Close()
		if restored > 0 {
			fmt.Fprintf(os.Stderr, "paperfig: resumed %d completed runs from %s\n", restored, *checkpoint)
		}
	}

	if *httpAddr != "" {
		// The metrics registry is live: publishing before the work starts
		// lets /debug/vars show memo hits/misses accumulate mid-sweep.
		stats.PublishExpvar("paperfig", r.Metrics())
		addr, stop, err := stats.ServeDebug(*httpAddr)
		if err != nil {
			fail(err)
		}
		defer stop()
		fmt.Fprintf(os.Stderr, "paperfig: debug server on http://%s/debug/vars\n", addr)
	}

	plotFigures = *plot
	if err := execute(r, execOpts{
		fig: *fig, table: *table, headline: *headline, all: *all,
		ablation: *ablation, renderers: *renderers, related: *related,
		imr: *imr, sweep: *sweep, falseOverlap: *falseOverlap,
		tileSize: *tileSize, reuse: *reuse, report: *report,
		arena: *arenaMode, policies: roster, size: *arenaSize,
		ways: *arenaWays, curves: *arenaCurves, jsonOut: jsonOut,
	}); err != nil {
		fail(err)
	}
	if *statsPath != "" {
		if err := writeStats(r, *statsPath); err != nil {
			fail(err)
		}
	}
	if *tracePath != "" {
		if err := writeTrace(tracer, *tracePath); err != nil {
			fail(err)
		}
	}
}

// writeTrace exports the recorded sweep spans as Chrome trace_event JSON.
func writeTrace(tracer *stats.Tracer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tracer.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Println("wrote", path)
	return nil
}

// execOpts selects what one paperfig invocation produces.
type execOpts struct {
	fig, table                            int
	headline, all, related                bool
	ablation, renderers, imr, sweep       string
	falseOverlap, tileSize, reuse, report string

	arena           bool
	policies        []string
	size            float64
	ways            int
	curves, jsonOut bool
}

// execute dispatches the single selected mode.
func execute(r *experiments.Runner, o execOpts) error {
	switch {
	case o.arena:
		return runArena(r, o)
	case o.report != "":
		if err := r.Prewarm(prewarmPar); err != nil {
			return err
		}
		f, err := os.Create(o.report)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := r.WriteReport(f, time.Now()); err != nil {
			return err
		}
		fmt.Println("wrote", o.report)
		return nil
	case o.tileSize != "":
		t, _, err := r.TileSizeSweep(o.tileSize)
		if err != nil {
			return err
		}
		printTableOut(t)
		return nil
	case o.falseOverlap != "":
		t, err := r.FalseOverlap(o.falseOverlap)
		if err != nil {
			return err
		}
		printTableOut(t)
		return nil
	case o.sweep != "":
		t, _, err := r.SizeSweep(o.sweep)
		if err != nil {
			return err
		}
		printTableOut(t)
		return nil
	case o.imr != "":
		t, err := r.TBRvsIMR(o.imr)
		if err != nil {
			return err
		}
		printTableOut(t)
		return nil
	case o.related:
		t, err := r.RelatedWork(48)
		if err != nil {
			return err
		}
		printTableOut(t)
		return nil
	case o.reuse != "":
		t, err := r.ReuseProfile(o.reuse)
		if err != nil {
			return err
		}
		printTableOut(t)
		return nil
	case o.renderers != "":
		p, err := r.ParallelRenderers(o.renderers, 64)
		if err != nil {
			return err
		}
		printTableOut(p.Table())
		return nil
	case o.ablation != "":
		a, err := r.Ablation(o.ablation, 64)
		if err != nil {
			return err
		}
		printTableOut(a.Table())
		return nil
	}
	return run(r, o.fig, o.table, o.headline, o.all)
}

// runArena races the selected roster and renders the ranked report. With
// -format json it emits the report's canonical bytes — identical to what
// POST /v1/arena serves for the same race (pass -frames 1: the daemon pins
// a single frame on its shared runner).
func runArena(r *experiments.Runner, o execOpts) error {
	rep, err := arena.Race(r.Ctx, r, arena.Options{
		Policies:   o.policies,
		Benchmarks: r.Benchmarks,
		SizeKB:     o.size,
		Ways:       o.ways,
		Curves:     o.curves,
		Parallel:   r.Parallel,
	})
	if err != nil {
		return err
	}
	if o.jsonOut {
		body, err := rep.Encode()
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(body)
		return err
	}
	for _, t := range rep.Tables() {
		printTableOut(t)
	}
	return nil
}

// writeStats dumps the runner's live metrics registry (memo hits/misses per
// table) as JSON.
func writeStats(r *experiments.Runner, path string) error {
	blob, err := json.MarshalIndent(r.Metrics().Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote stats to", path)
	return nil
}

// printTableOut renders a table in the selected output format.
var printTableOut = func(t *experiments.Table) { fmt.Println(t) }

// prewarmPar is the -parallel flag value used by the -all prewarm
// (0 = GOMAXPROCS).
var prewarmPar = 0

// plotFigures selects ASCII charts for the policy figures.
var plotFigures = false

// slugify turns a table title into a file name.
func slugify(title string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(title) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
		case r == ' ' || r == ':' || r == '/' || r == ',':
			if n := b.String(); len(n) > 0 && n[len(n)-1] != '-' {
				b.WriteByte('-')
			}
		}
		if b.Len() > 48 {
			break
		}
	}
	return strings.TrimRight(b.String(), "-")
}

func run(r *experiments.Runner, fig, table int, headline, all bool) error {
	if all {
		if err := r.Prewarm(prewarmPar); err != nil {
			return err
		}
		for _, t := range []int{1, 2} {
			if err := printTable(r, t); err != nil {
				return err
			}
		}
		for _, f := range []int{1, 9, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23, 24} {
			if err := printFig(r, f); err != nil {
				return err
			}
		}
		return printHeadline(r)
	}
	if table != 0 {
		return printTable(r, table)
	}
	if fig != 0 {
		return printFig(r, fig)
	}
	if headline {
		return printHeadline(r)
	}
	flag.Usage()
	return fmt.Errorf("nothing to do: pass -fig, -table, -headline or -all")
}

func printTable(r *experiments.Runner, n int) error {
	switch n {
	case 1:
		printTableOut(experiments.TableI())
	case 2:
		t, err := r.TableII()
		if err != nil {
			return err
		}
		printTableOut(t)
	default:
		return fmt.Errorf("unknown table %d", n)
	}
	return nil
}

func printFig(r *experiments.Runner, n int) error {
	var t *experiments.Table
	var err error
	switch n {
	case 1:
		var f *experiments.PolicyFigure
		if f, err = r.Fig1(); err == nil {
			if plotFigures {
				fmt.Print(f.AsciiPlot(70, 18))
				return nil
			}
			t = f.Table()
		}
	case 9, 10:
		t, err = experiments.Fig910()
	case 11:
		var f *experiments.PolicyFigure
		if f, err = r.Fig11(); err == nil {
			if plotFigures {
				fmt.Print(f.AsciiPlot(70, 18))
				return nil
			}
			t = f.Table()
		}
	case 12:
		figs, e := r.Fig12()
		if e != nil {
			return e
		}
		for _, pol := range []string{"LRU", "OPT"} {
			ft := figs[pol].Table()
			ft.Title = fmt.Sprintf("Figure 12 (%s): miss ratio vs size and associativity", pol)
			printTableOut(ft)
		}
		return nil
	case 13:
		var f *experiments.PolicyFigure
		if f, err = r.Fig13(); err == nil {
			if plotFigures {
				fmt.Print(f.AsciiPlot(70, 18))
				return nil
			}
			t = f.Table()
		}
	case 14, 15, 16, 17, 18, 19:
		var f *experiments.TrafficFigure
		switch n {
		case 14:
			f, err = r.Fig14()
		case 15:
			f, err = r.Fig15()
		case 16:
			f, err = r.Fig16()
		case 17:
			f, err = r.Fig17()
		case 18:
			f, err = r.Fig18()
		case 19:
			f, err = r.Fig19()
		}
		if err == nil {
			t = f.Table()
		}
	case 20, 21:
		var f *experiments.EnergyFigure
		if n == 20 {
			f, err = r.Fig20()
		} else {
			f, err = r.Fig21()
		}
		if err == nil {
			t = f.Table()
		}
	case 22:
		var f *experiments.GPUEnergyFigure
		if f, err = r.Fig22(); err == nil {
			t = f.Table()
		}
	case 23, 24:
		var f *experiments.ThroughputFigure
		if n == 23 {
			f, err = r.Fig23()
		} else {
			f, err = r.Fig24()
		}
		if err == nil {
			t = f.Table()
		}
	default:
		return fmt.Errorf("unknown figure %d", n)
	}
	if err != nil {
		return err
	}
	printTableOut(t)
	return nil
}

func printHeadline(r *experiments.Runner) error {
	h, err := r.Headline()
	if err != nil {
		return err
	}
	printTableOut(h.Table())
	return nil
}
