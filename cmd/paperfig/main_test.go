package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
	"time"

	"tcor/internal/experiments"
)

func TestSlugify(t *testing.T) {
	cases := map[string]string{
		"Figure 14: PB accesses to L2, normalized to baseline (64 KiB Tile Cache)": "figure-14-pb-accesses-to-l2-normalized-to-baselin",
		"Table I: GPU simulation parameters":                                       "table-i-gpu-simulation-parameters",
		"":                                                                         "",
	}
	for in, want := range cases {
		if got := slugify(in); got != want {
			t.Errorf("slugify(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestParseBenchmarks(t *testing.T) {
	if got, err := parseBenchmarks(""); err != nil || got != nil {
		t.Errorf("empty list: %v, %v", got, err)
	}
	got, err := parseBenchmarks("CCS, SoD,GTr")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != "CCS" || got[1] != "SoD" || got[2] != "GTr" {
		t.Errorf("aliases = %v", got)
	}
	// A typo must fail loudly, not silently run an empty sweep.
	if _, err := parseBenchmarks("CCS,nope"); err == nil {
		t.Fatal("unknown alias must fail")
	} else if !strings.Contains(err.Error(), "nope") {
		t.Errorf("error %q does not name the bad alias", err)
	}
}

func TestParsePolicies(t *testing.T) {
	if got, err := parsePolicies(""); err != nil || got != nil {
		t.Errorf("empty list: %v, %v", got, err)
	}
	got, err := parsePolicies("LRU, OPT,s3fifo")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != "LRU" || got[1] != "OPT" || got[2] != "s3fifo" {
		t.Errorf("roster = %v", got)
	}
	if _, err := parsePolicies("LRU,bogus"); err == nil {
		t.Fatal("unknown policy must fail")
	} else if !strings.Contains(err.Error(), "bogus") {
		t.Errorf("error %q does not name the bad policy", err)
	}
}

func TestValidateNumbers(t *testing.T) {
	if err := validateNumbers(0, 0, 0, 0, 0); err != nil {
		t.Errorf("defaults: %v", err)
	}
	if err := validateNumbers(2, 4, 0, 8, time.Minute); err != nil {
		t.Errorf("valid values: %v", err)
	}
	cases := []struct {
		frames, parallel, par, tilePar int
		timeout                        time.Duration
		wantIn                         string
	}{
		{-1, 0, 0, 0, 0, "-frames"},
		{0, -1, 0, 0, 0, "-parallel"},
		{0, 0, -1, 0, 0, "-par"},
		{0, 0, 0, -1, 0, "-tile-parallel"},
		{0, 0, 0, 0, -time.Second, "-timeout"},
	}
	for _, tc := range cases {
		err := validateNumbers(tc.frames, tc.parallel, tc.par, tc.tilePar, tc.timeout)
		if err == nil {
			t.Errorf("%+v must fail", tc)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantIn) {
			t.Errorf("error %q does not mention %s", err, tc.wantIn)
		}
	}
}

func TestModeConflict(t *testing.T) {
	var m modes
	m.add("fig", true)
	m.add("table", false)
	if err := m.conflict(); err != nil {
		t.Errorf("single mode: %v", err)
	}
	m.add("all", true)
	err := m.conflict()
	if err == nil {
		t.Fatal("two modes must conflict")
	}
	if !strings.Contains(err.Error(), "-fig") || !strings.Contains(err.Error(), "-all") {
		t.Errorf("error %q does not name both modes", err)
	}
	if err := (modes{}).conflict(); err != nil {
		t.Errorf("no modes: %v", err)
	}
}

func TestExecuteAndWriteStats(t *testing.T) {
	// One small figure end to end, then the metrics dump.
	old := printTableOut
	printTableOut = func(*experiments.Table) {}
	defer func() { printTableOut = old }()

	r := experiments.NewRunner()
	r.Frames = 1
	r.Benchmarks = []string{"GTr"}
	if err := execute(r, execOpts{fig: 14}); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/metrics.json"
	if err := writeStats(r, path); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]int64
	if err := json.Unmarshal(blob, &snap); err != nil {
		t.Fatalf("metrics dump is not JSON: %v", err)
	}
	if snap["memo.runs.misses"] == 0 {
		t.Errorf("no simulations metered: %v", snap)
	}
	if snap["memo.scenes.misses"] != 1 {
		t.Errorf("scene misses = %d, want 1 (one benchmark)", snap["memo.scenes.misses"])
	}
}

func TestExecuteArena(t *testing.T) {
	var titles []string
	old := printTableOut
	printTableOut = func(t *experiments.Table) { titles = append(titles, t.Title) }
	defer func() { printTableOut = old }()

	r := experiments.NewRunner()
	r.Frames = 1
	r.Benchmarks = []string{"GTr"}
	o := execOpts{arena: true, policies: []string{"LRU", "OPT", "ARC"}, size: 16}
	if err := execute(r, o); err != nil {
		t.Fatal(err)
	}
	if len(titles) != 2 || !strings.Contains(titles[0], "Policy arena") {
		t.Errorf("arena without curves printed tables %v, want ranking + per-benchmark", titles)
	}
	titles = nil
	o.curves = true
	if err := execute(r, o); err != nil {
		t.Fatal(err)
	}
	if len(titles) != 3 {
		t.Errorf("arena with curves printed tables %v, want three", titles)
	}
	o.policies = []string{"PLRU"} // needs power-of-two ways; must surface
	if err := execute(r, o); err == nil {
		t.Error("PLRU without ways must fail the race")
	}
}

func TestExecuteUnknownFigure(t *testing.T) {
	r := experiments.NewRunner()
	if err := execute(r, execOpts{fig: 99}); err == nil {
		t.Error("unknown figure must fail")
	}
	if err := execute(r, execOpts{table: 7}); err == nil {
		t.Error("unknown table must fail")
	}
}
