package main

import "testing"

func TestSlugify(t *testing.T) {
	cases := map[string]string{
		"Figure 14: PB accesses to L2, normalized to baseline (64 KiB Tile Cache)": "figure-14-pb-accesses-to-l2-normalized-to-baselin",
		"Table I: GPU simulation parameters":                                       "table-i-gpu-simulation-parameters",
		"":                                                                         "",
	}
	for in, want := range cases {
		if got := slugify(in); got != want {
			t.Errorf("slugify(%q) = %q, want %q", in, got, want)
		}
	}
}
