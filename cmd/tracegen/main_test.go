package main

import (
	"bufio"
	"bytes"
	"strings"
	"testing"

	"tcor/internal/geom"
)

func TestBlockDumperFormats(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	d := &blockDumper{w: w}
	d.ListWrite(0x20000000, 3)
	d.AttrWrite(1, 2, 0, 5, []uint64{0x30000000, 0x30000040})
	d.ListRead(0x20000040, 3)
	d.PrimRead(1, 2, 9, 5, []uint64{0x30000000, 0x30000040}, 3)
	d.TileDone(3, 0)
	w.Flush()
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "W 0x20000000 PB-Lists") {
		t.Errorf("list write line = %q", lines[0])
	}
	if !strings.Contains(lines[1], "PB-Attributes") {
		t.Errorf("attr write line = %q", lines[1])
	}
	if !strings.HasPrefix(lines[3], "R ") {
		t.Errorf("list read line = %q", lines[3])
	}
}

func TestRunArgsValidation(t *testing.T) {
	if err := run("nope", "prim", "interleaved", "z"); err == nil {
		t.Error("unknown benchmark must fail")
	}
	if err := run("GTr", "bogus", "interleaved", "z"); err == nil {
		t.Error("unknown kind must fail")
	}
	if err := run("GTr", "block", "bogus", "z"); err == nil {
		t.Error("unknown layout must fail")
	}
	if err := run("GTr", "prim", "interleaved", "bogus"); err == nil {
		t.Error("unknown order must fail")
	}
	_ = geom.TileID(0)
}
