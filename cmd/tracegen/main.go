// Command tracegen synthesizes a benchmark, bins one frame, and dumps the
// Parameter Buffer access trace in a simple text format — one record per
// line — for consumption by external cache simulators.
//
// Two trace kinds are available:
//
//	-kind prim    primitive-granularity PB-Attributes accesses (the stream
//	              behind the paper's Figs. 1 and 11-13):
//	              W <prim>            (Polygon List Builder write)
//	              R <prim> <optnum>   (Tile Fetcher read + OPT Number)
//	-kind block   block-granularity byte addresses for the whole Parameter
//	              Buffer under a chosen PB-Lists layout:
//	              W|R <hex addr> <region>
//
// Usage:
//
//	tracegen -benchmark CCS -kind prim > ccs.trace
//	tracegen -benchmark DDS -kind block -layout interleaved > dds.trace
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"tcor/internal/buildinfo"
	"tcor/internal/geom"
	"tcor/internal/memmap"
	"tcor/internal/pbuffer"
	"tcor/internal/tiling"
	"tcor/internal/workload"
)

func main() {
	benchmark := flag.String("benchmark", "CCS", "benchmark alias")
	kind := flag.String("kind", "prim", "trace kind: prim or block")
	layout := flag.String("layout", "interleaved", "PB-Lists layout for block traces: baseline or interleaved")
	order := flag.String("order", "z", "tile traversal order: z or scanline")
	version := flag.Bool("version", false, "print the build identity and exit")
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Get())
		return
	}
	if err := run(*benchmark, *kind, *layout, *order); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(benchmark, kind, layoutName, orderName string) error {
	spec, err := workload.ByAlias(benchmark)
	if err != nil {
		return err
	}
	spec.Frames = 1
	screen := geom.DefaultScreen()
	scene, err := workload.Generate(spec, screen)
	if err != nil {
		return err
	}
	ord := tiling.OrderZ
	if orderName == "scanline" {
		ord = tiling.OrderScanline
	} else if orderName != "z" {
		return fmt.Errorf("unknown order %q", orderName)
	}
	trav, err := tiling.NewTraversal(screen, ord)
	if err != nil {
		return err
	}
	b, err := tiling.Bin(screen, trav, scene.Frame(0).Prims)
	if err != nil {
		return err
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()

	switch kind {
	case "prim":
		for p := range b.PrimTiles {
			fmt.Fprintf(w, "W %d\n", p)
		}
		for _, tile := range trav.Seq {
			for _, e := range b.Lists[tile] {
				fmt.Fprintf(w, "R %d %d\n", e.Prim, e.OPTNum)
			}
		}
	case "block":
		var lists pbuffer.ListLayout
		switch layoutName {
		case "baseline":
			lists = pbuffer.NewBaselineListLayout(screen.NumTiles())
		case "interleaved":
			lists = pbuffer.NewInterleavedListLayout(screen.NumTiles())
		default:
			return fmt.Errorf("unknown layout %q", layoutName)
		}
		tiling.Replay(b, lists, pbuffer.NewAttrLayout(), &blockDumper{w: w})
	default:
		return fmt.Errorf("unknown trace kind %q", kind)
	}
	return nil
}

// blockDumper writes each block-granularity event as one line.
type blockDumper struct {
	w *bufio.Writer
}

func (d *blockDumper) ListWrite(addr uint64, tile geom.TileID) {
	fmt.Fprintf(d.w, "W %#x %s\n", addr, memmap.RegionOf(addr))
}

func (d *blockDumper) AttrWrite(prim uint32, n uint8, first, last uint16, blocks []uint64) {
	for _, b := range blocks {
		fmt.Fprintf(d.w, "W %#x %s\n", b, memmap.RegionOf(b))
	}
}

func (d *blockDumper) ListRead(addr uint64, tile geom.TileID) {
	fmt.Fprintf(d.w, "R %#x %s\n", addr, memmap.RegionOf(addr))
}

func (d *blockDumper) PrimRead(prim uint32, n uint8, opt, last uint16, blocks []uint64, tile geom.TileID) {
	for _, b := range blocks {
		fmt.Fprintf(d.w, "R %#x %s\n", b, memmap.RegionOf(b))
	}
}

func (d *blockDumper) TileDone(tile geom.TileID, pos uint16) {}
