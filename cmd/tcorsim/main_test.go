package main

import (
	"context"
	"os"
	"testing"

	"tcor/internal/gpu"
	"tcor/internal/workload"
)

func TestConfigFor(t *testing.T) {
	cases := map[string]gpu.TileCacheKind{
		"baseline":  gpu.KindBaseline,
		"tcor":      gpu.KindTCOR,
		"tcor-nol2": gpu.KindTCOR,
	}
	for name, kind := range cases {
		cfg, err := configFor(name, 64)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if cfg.Kind != kind {
			t.Errorf("%s: kind = %v", name, cfg.Kind)
		}
		if cfg.TileCacheBytes != 64*1024 {
			t.Errorf("%s: size = %d", name, cfg.TileCacheBytes)
		}
	}
	if _, err := configFor("bogus", 64); err == nil {
		t.Error("unknown config must fail")
	}
	nol2, _ := configFor("tcor-nol2", 64)
	if nol2.L2Enhanced {
		t.Error("tcor-nol2 must disable the L2 enhancements")
	}
}

func TestRunTextAndJSON(t *testing.T) {
	// Exercise both output paths end to end on the smallest benchmark.
	ctx := context.Background()
	for _, js := range []bool{false, true} {
		emitJSON = js
		if err := run(ctx, "GTr", "", "tcor", 64, 1, false); err != nil {
			t.Fatalf("json=%v: %v", js, err)
		}
	}
	emitJSON = false
	if err := run(ctx, "GTr", "", "bogus", 64, 1, false); err == nil {
		t.Error("bogus config must fail")
	}
	if err := run(ctx, "nope", "", "tcor", 64, 1, false); err == nil {
		t.Error("unknown benchmark must fail")
	}
}

func TestRunWithSpecFile(t *testing.T) {
	path := t.TempDir() + "/s.json"
	data, err := workload.MarshalSpec(workload.Suite()[9]) // GTr, smallest
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), "", path, "tcor", 64, 1, false); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), "", path+".missing", "tcor", 64, 1, false); err == nil {
		t.Error("missing spec must fail")
	}
}
