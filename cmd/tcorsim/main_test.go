package main

import (
	"context"
	"encoding/json"
	"io"
	"os"
	"strings"
	"testing"

	"tcor/internal/arena"
	"tcor/internal/gpu"
	"tcor/internal/workload"
)

func TestConfigFor(t *testing.T) {
	cases := map[string]gpu.TileCacheKind{
		"baseline":  gpu.KindBaseline,
		"tcor":      gpu.KindTCOR,
		"tcor-nol2": gpu.KindTCOR,
	}
	for name, kind := range cases {
		cfg, err := configFor(name, 64)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if cfg.Kind != kind {
			t.Errorf("%s: kind = %v", name, cfg.Kind)
		}
		if cfg.TileCacheBytes != 64*1024 {
			t.Errorf("%s: size = %d", name, cfg.TileCacheBytes)
		}
	}
	if _, err := configFor("bogus", 64); err == nil {
		t.Error("unknown config must fail")
	}
	nol2, _ := configFor("tcor-nol2", 64)
	if nol2.L2Enhanced {
		t.Error("tcor-nol2 must disable the L2 enhancements")
	}
}

func TestParseOptionsValidation(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string // substring; empty = must succeed
	}{
		{"defaults", nil, ""},
		{"explicit run", []string{"-benchmark", "SoD", "-config", "baseline", "-size", "128"}, ""},
		{"compare alone", []string{"-compare"}, ""},
		{"stats and check", []string{"-stats", "out.json", "-check"}, ""},
		{"evtrace with stats", []string{"-evtrace", "8", "-stats", "out.json"}, ""},
		{"negative timeout", []string{"-timeout", "-1s"}, "-timeout"},
		{"negative frames", []string{"-frames", "-1"}, "-frames"},
		{"zero size", []string{"-size", "0"}, "-size"},
		{"negative size", []string{"-size", "-64"}, "-size"},
		{"negative parallel", []string{"-parallel", "-2"}, "-parallel"},
		{"negative evtrace", []string{"-evtrace", "-1"}, "-evtrace"},
		{"evtrace without stats", []string{"-evtrace", "8"}, "-stats"},
		{"chaos with compare", []string{"-compare", "-chaos", "rate=0.5,lat=10ms"}, ""},
		{"chaos without compare", []string{"-chaos", "rate=0.5"}, "-compare"},
		{"chaos bad plan", []string{"-compare", "-chaos", "rate=nope"}, "probability"},
		{"compare with config", []string{"-compare", "-config", "tcor"}, "conflicts"},
		{"spec with benchmark", []string{"-spec", "x.json", "-benchmark", "CCS"}, "conflicts"},
		{"policy alone", []string{"-policy", "ARC"}, ""},
		{"policy unknown", []string{"-policy", "bogus"}, "unknown policy"},
		{"policy with compare", []string{"-policy", "ARC", "-compare"}, "conflicts"},
		{"policy with stats", []string{"-policy", "ARC", "-stats", "out.json"}, "conflicts"},
		{"stray positional args", []string{"CCS"}, "unexpected arguments"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseOptions(tc.args, io.Discard)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("args %v must fail", tc.args)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestRunTextAndJSON(t *testing.T) {
	// Exercise both output paths end to end on the smallest benchmark.
	ctx := context.Background()
	base := options{benchmark: "GTr", config: "tcor", sizeKB: 64, frames: 1}
	for _, js := range []bool{false, true} {
		o := base
		o.jsonOut = js
		if err := run(ctx, io.Discard, o); err != nil {
			t.Fatalf("json=%v: %v", js, err)
		}
	}
	o := base
	o.config = "bogus"
	if err := run(ctx, io.Discard, o); err == nil {
		t.Error("bogus config must fail")
	}
	o = base
	o.benchmark = "nope"
	if err := run(ctx, io.Discard, o); err == nil {
		t.Error("unknown benchmark must fail")
	}
}

func TestParseOptionsCanonicalizesPolicy(t *testing.T) {
	o, err := parseOptions([]string{"-policy", "s3fifo"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if o.policy != "S3-FIFO" {
		t.Errorf("policy alias resolved to %q, want S3-FIFO", o.policy)
	}
}

func TestRunPolicyRace(t *testing.T) {
	// The -policy race anchors on LRU and OPT; text and json outputs share
	// one report.
	ctx := context.Background()
	o := options{benchmark: "GTr", policy: "ARC", sizeKB: 16, frames: 1}
	var text strings.Builder
	if err := run(ctx, &text, o); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Policy arena", "ARC", "LRU", "OPT"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("text report missing %q:\n%s", want, text.String())
		}
	}
	o.jsonOut = true
	var js strings.Builder
	if err := run(ctx, &js, o); err != nil {
		t.Fatal(err)
	}
	var rep arena.Report
	if err := json.Unmarshal([]byte(js.String()), &rep); err != nil {
		t.Fatalf("-policy -json is not a canonical report: %v", err)
	}
	if rep.Ranking[0].Policy != "OPT" {
		t.Errorf("OPT not ranked first: %+v", rep.Ranking)
	}
	o.benchmark = "nope"
	if err := run(ctx, io.Discard, o); err == nil {
		t.Error("unknown benchmark must fail the race")
	}
}

func TestRunWithSpecFile(t *testing.T) {
	path := t.TempDir() + "/s.json"
	data, err := workload.MarshalSpec(workload.Suite()[9]) // GTr, smallest
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	o := options{specPath: path, config: "tcor", sizeKB: 64, frames: 1}
	if err := run(context.Background(), io.Discard, o); err != nil {
		t.Fatal(err)
	}
	o.specPath = path + ".missing"
	if err := run(context.Background(), io.Discard, o); err == nil {
		t.Error("missing spec must fail")
	}
}

func TestRunStatsCheckAndTrace(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/stats.json"
	o := options{
		benchmark: "GTr", config: "tcor", sizeKB: 64, frames: 1,
		statsPath: path, check: true, evtrace: 8,
	}
	if err := run(context.Background(), io.Discard, o); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc statsDoc
	if err := json.Unmarshal(blob, &doc); err != nil {
		t.Fatalf("stats file is not JSON: %v", err)
	}
	if len(doc.Runs) != 1 {
		t.Fatalf("stats runs = %d, want 1", len(doc.Runs))
	}
	r := doc.Runs[0]
	if r.Benchmark != "GTr" || r.Config != "tcor" || r.TileCacheKB != 64 {
		t.Errorf("run metadata wrong: %+v", r)
	}
	// Every hierarchy level must be covered by the schema.
	for _, want := range []string{
		"l1.list.hits", "l1.attr.reads", "l1.tile.accesses", "l1.vertex.accesses",
		"l2.reads", "l2.in.region.PB-Lists.reads", "dram.reads", "raster.fragments",
	} {
		if _, ok := r.Counters[want]; !ok {
			t.Errorf("counter %q missing from -stats output", want)
		}
	}
	if len(r.L2Trace) == 0 || len(r.L2Trace) > 8 {
		t.Errorf("L2 trace has %d events, want 1..8", len(r.L2Trace))
	}
}

func TestRunCompareStatsDeterministic(t *testing.T) {
	// The -stats file must not depend on -parallel scheduling.
	dir := t.TempDir()
	var dumps [][]byte
	for i, par := range []int{1, 2} {
		path := dir + "/" + string(rune('a'+i)) + ".json"
		o := options{
			benchmark: "GTr", config: "tcor", sizeKB: 64, frames: 1,
			compare: true, parallel: par, statsPath: path, check: true,
		}
		if err := run(context.Background(), io.Discard, o); err != nil {
			t.Fatal(err)
		}
		blob, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		dumps = append(dumps, blob)
	}
	if string(dumps[0]) != string(dumps[1]) {
		t.Error("-stats output differs across -parallel levels")
	}
	var doc statsDoc
	if err := json.Unmarshal(dumps[0], &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Runs) != 2 || doc.Runs[0].Config != "baseline" || doc.Runs[1].Config != "tcor" {
		t.Fatalf("compare runs wrong: %+v", doc.Runs)
	}
	// Schema stability: both configurations publish the same counter names.
	if len(doc.Runs[0].Counters) != len(doc.Runs[1].Counters) {
		t.Errorf("schema differs: %d vs %d counters",
			len(doc.Runs[0].Counters), len(doc.Runs[1].Counters))
	}
}
