// Command tcorsim runs one benchmark of the suite through the full TBR GPU
// model under a chosen Tile Cache organization and prints a detailed report:
// per-level traffic, cache statistics, energy breakdown, Tile Fetcher
// throughput and frame rate.
//
// Usage:
//
//	tcorsim -benchmark CCS -config tcor -size 64
//	tcorsim -benchmark DDS -config baseline -size 128 -frames 3
//	tcorsim -benchmark SoD -compare        # baseline vs TCOR side by side
//	tcorsim -benchmark SoD -compare -parallel 2 -timeout 5m
//
// With -compare the configurations run concurrently through the bounded
// sweep pool; reports are buffered per configuration and printed in a
// fixed order, so the output is byte-identical at every -parallel level.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"tcor/internal/experiments"
	"tcor/internal/geom"
	"tcor/internal/gpu"
	"tcor/internal/memmap"
	"tcor/internal/workload"
)

func main() {
	benchmark := flag.String("benchmark", "CCS", "benchmark alias (see paperfig -table 2)")
	specPath := flag.String("spec", "", "JSON workload profile (overrides -benchmark; see internal/workload.ParseSpec)")
	config := flag.String("config", "tcor", "configuration: baseline, tcor, tcor-nol2")
	sizeKB := flag.Int("size", 64, "total Tile Cache size in KiB (paper: 64 or 128)")
	frames := flag.Int("frames", 0, "frames to simulate (0 = benchmark default)")
	compare := flag.Bool("compare", false, "run baseline and TCOR and print both")
	jsonOut := flag.Bool("json", false, "emit a machine-readable JSON summary instead of text")
	parallel := flag.Int("parallel", 0, "max concurrent -compare simulations (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "abort the run after this duration (0 = no limit)")
	flag.Parse()
	emitJSON = *jsonOut
	parallelN = *parallel

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if err := run(ctx, *benchmark, *specPath, *config, *sizeKB, *frames, *compare); err != nil {
		fmt.Fprintln(os.Stderr, "tcorsim:", err)
		os.Exit(1)
	}
}

// parallelN is the -parallel flag value (0 = GOMAXPROCS).
var parallelN int

// emitJSON selects the machine-readable output mode.
var emitJSON bool

// summary is the JSON shape of one simulation.
type summary struct {
	Benchmark     string  `json:"benchmark"`
	Config        string  `json:"config"`
	TileCacheKB   int     `json:"tileCacheKB"`
	Frames        int     `json:"frames"`
	PBL2Reads     int64   `json:"pbL2Reads"`
	PBL2Writes    int64   `json:"pbL2Writes"`
	PBMemReads    int64   `json:"pbMemReads"`
	PBMemWrites   int64   `json:"pbMemWrites"`
	MemReads      int64   `json:"memReads"`
	MemWrites     int64   `json:"memWrites"`
	PPC           float64 `json:"primitivesPerCycle"`
	FPS           float64 `json:"fps"`
	HierEnergyMJ  float64 `json:"memHierarchyEnergyMJ"`
	TotalEnergyMJ float64 `json:"totalGPUEnergyMJ"`
	FrameCycles   int64   `json:"frameCycles"`
}

func run(ctx context.Context, benchmark, specPath, config string, sizeKB, frames int, compare bool) error {
	var spec workload.Spec
	var err error
	if specPath != "" {
		spec, err = workload.LoadSpec(specPath)
	} else {
		spec, err = workload.ByAlias(benchmark)
	}
	if err != nil {
		return err
	}
	if frames > 0 {
		spec.Frames = frames
	}
	scene, err := workload.Generate(spec, geom.DefaultScreen())
	if err != nil {
		return err
	}
	st := scene.Stats()
	if !emitJSON {
		fmt.Printf("benchmark %s (%s): %d primitives, %.2f MiB Parameter Buffer, re-use %.2f, %d frame(s)\n\n",
			spec.Alias, spec.Name, st.Primitives,
			float64(st.PBFootprint)/(1024*1024), st.AvgPrimReuse, scene.NumFrames())
	}

	if compare {
		// Each configuration renders into its own buffer inside the sweep
		// pool; printing afterwards in slice order keeps the output stable.
		reports, err := experiments.SweepSlice(ctx, parallelN, []string{"baseline", "tcor"},
			func(_ context.Context, c string) (string, error) {
				var b strings.Builder
				if err := simulate(&b, scene, c, sizeKB); err != nil {
					return "", err
				}
				return b.String(), nil
			})
		if err != nil {
			return err
		}
		for _, rep := range reports {
			fmt.Print(rep)
		}
		return nil
	}
	return simulate(os.Stdout, scene, config, sizeKB)
}

func configFor(name string, sizeKB int) (gpu.Config, error) {
	bytes := sizeKB * 1024
	switch name {
	case "baseline":
		return gpu.Baseline(bytes), nil
	case "tcor":
		return gpu.TCOR(bytes), nil
	case "tcor-nol2":
		return gpu.TCORNoL2(bytes), nil
	default:
		return gpu.Config{}, fmt.Errorf("unknown config %q (baseline, tcor, tcor-nol2)", name)
	}
}

func simulate(w io.Writer, scene *workload.Scene, config string, sizeKB int) error {
	cfg, err := configFor(config, sizeKB)
	if err != nil {
		return err
	}
	res, err := gpu.Simulate(scene, cfg)
	if err != nil {
		return err
	}
	if emitJSON {
		pbL2, pbMem := res.L2In.PB(), res.DRAMIn.PB()
		out, err := json.MarshalIndent(summary{
			Benchmark: res.Benchmark, Config: config, TileCacheKB: sizeKB,
			Frames:    res.Frames,
			PBL2Reads: pbL2.Reads, PBL2Writes: pbL2.Writes,
			PBMemReads: pbMem.Reads, PBMemWrites: pbMem.Writes,
			MemReads: res.DRAM.Reads, MemWrites: res.DRAM.Writes,
			PPC: res.PPC(), FPS: res.FPS(600e6),
			HierEnergyMJ:  res.MemHierarchyPJ / 1e9,
			TotalEnergyMJ: res.TotalPJ / 1e9,
			FrameCycles:   res.FrameCycles / int64(res.Frames),
		}, "", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintln(w, string(out))
		return nil
	}

	fmt.Fprintf(w, "=== %s, %d KiB Tile Cache ===\n", config, sizeKB)
	pbL2 := res.L2In.PB()
	pbMem := res.DRAMIn.PB()
	fmt.Fprintf(w, "PB accesses to L2:          %8d reads %8d writes\n", pbL2.Reads, pbL2.Writes)
	fmt.Fprintf(w, "PB accesses to main memory: %8d reads %8d writes\n", pbMem.Reads, pbMem.Writes)
	fmt.Fprintf(w, "total main memory accesses: %8d reads %8d writes\n", res.DRAM.Reads, res.DRAM.Writes)
	for _, reg := range []memmap.Region{
		memmap.RegionPBLists, memmap.RegionPBAttributes, memmap.RegionTextures,
		memmap.RegionInputGeometry, memmap.RegionFrameBuffer,
	} {
		rc := res.DRAMIn.Region(reg)
		if rc.Reads+rc.Writes > 0 {
			fmt.Fprintf(w, "  memory %-16s %8d reads %8d writes\n", reg, rc.Reads, rc.Writes)
		}
	}
	if res.Kind == gpu.KindTCOR {
		a := res.AttrStats
		fmt.Fprintf(w, "attribute cache: %d reads (%.1f%% hit), %d writes (%d inserted, %d bypassed), %d stalls\n",
			a.Reads, 100*float64(a.ReadHits)/float64(max64(a.Reads, 1)),
			a.Writes, a.WriteInserts, a.WriteBypasses, a.Stalls)
		l := res.ListStats
		fmt.Fprintf(w, "prim list cache: %d accesses (%.1f%% hit)\n",
			l.Reads+l.Writes, 100*float64(l.Hits)/float64(max64(l.Reads+l.Writes, 1)))
	} else {
		ts := res.TileStats
		fmt.Fprintf(w, "tile cache: %d accesses (%.1f%% hit), %d writebacks\n",
			ts.Accesses, 100*ts.HitRatio(), ts.Writebacks)
	}
	l2 := res.L2Stats
	fmt.Fprintf(w, "L2: %d accesses (%.1f%% hit), %d writebacks, %d dropped (dead), %d dead evictions\n",
		l2.Reads+l2.Writes, 100*float64(l2.Hits)/float64(max64(l2.Reads+l2.Writes, 1)),
		l2.Writebacks, l2.DroppedWritebacks, l2.DeadEvictions)
	fmt.Fprintf(w, "tile fetcher: %.3f primitives/cycle (%d primitives over %d cycles)\n",
		res.PPC(), res.PrimReads, res.TFCycles)
	fmt.Fprintf(w, "frame: %d cycles -> %.1f FPS at 600 MHz\n",
		res.FrameCycles/int64(res.Frames), res.FPS(600e6))
	fmt.Fprintf(w, "energy: memory hierarchy %.3f mJ, total GPU %.3f mJ\n\n",
		res.MemHierarchyPJ/1e9, res.TotalPJ/1e9)
	fmt.Fprintln(w, res.Tally.String())
	return nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
