// Command tcorsim runs one benchmark of the suite through the full TBR GPU
// model under a chosen Tile Cache organization and prints a detailed report:
// per-level traffic, cache statistics, energy breakdown, Tile Fetcher
// throughput and frame rate.
//
// Usage:
//
//	tcorsim -benchmark CCS -config tcor -size 64
//	tcorsim -benchmark DDS -config baseline -size 128 -frames 3
//	tcorsim -benchmark SoD -compare        # baseline vs TCOR side by side
//	tcorsim -benchmark SoD -compare -parallel 2 -timeout 5m
//	tcorsim -benchmark CCS -stats out.json # full hierarchy counter dump
//	tcorsim -benchmark CCS -check          # verify cross-level invariants
//	tcorsim -benchmark CCS -evtrace 32 -stats out.json  # last 32 L2 evictions
//	tcorsim -benchmark CCS -trace out.json # span trace for chrome://tracing
//	tcorsim -benchmark GoW -http :0        # expvar + pprof while running
//	tcorsim -benchmark SoD -compare -chaos "rate=0.5,lat=100ms"  # fault drill
//	tcorsim -benchmark CCS -policy ARC     # race one policy vs LRU and OPT
//
// -policy skips the full GPU model and races the named replacement policy
// (any registry name, see paperfig -arena) against the LRU and OPT anchors
// on the benchmark's PLB access stream at -size KiB, printing the arena's
// ranked report. With -json it emits the report's canonical encoding.
//
// With -compare the configurations run concurrently through the bounded
// sweep pool; reports are buffered per configuration and printed in a
// fixed order, so the output is byte-identical at every -parallel level.
//
// -stats writes a schema-stable JSON document: one entry per simulated
// configuration, each with the full counter map of every hierarchy level
// (L1 list/attribute/tile/vertex caches, L2, DRAM, per-region traffic).
// Counter names are identical across configurations — the organization a
// run did not use appears as zeros — so downstream tooling can diff runs.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"tcor/internal/arena"
	"tcor/internal/buildinfo"
	"tcor/internal/cache"
	"tcor/internal/experiments"
	"tcor/internal/geom"
	"tcor/internal/gpu"
	"tcor/internal/memmap"
	"tcor/internal/resilience"
	"tcor/internal/stats"
	"tcor/internal/workload"
)

func main() {
	opts, err := parseOptions(os.Args[1:], os.Stderr)
	if err != nil {
		if err != flag.ErrHelp {
			fmt.Fprintln(os.Stderr, "tcorsim:", err)
		}
		os.Exit(2)
	}
	if opts.version {
		fmt.Println(buildinfo.Get())
		return
	}

	ctx := context.Background()
	if opts.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.timeout)
		defer cancel()
	}

	if opts.httpAddr != "" {
		addr, stop, err := stats.ServeDebug(opts.httpAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tcorsim:", err)
			os.Exit(1)
		}
		defer stop()
		fmt.Fprintf(os.Stderr, "tcorsim: debug server on http://%s/debug/vars\n", addr)
	}

	if err := run(ctx, os.Stdout, opts); err != nil {
		fmt.Fprintln(os.Stderr, "tcorsim:", err)
		os.Exit(1)
	}
}

// options is the parsed and validated command line.
type options struct {
	benchmark string
	specPath  string
	config    string
	sizeKB    int
	frames    int
	compare   bool
	policy    string
	jsonOut   bool
	parallel  int
	tilePar   int
	timeout   time.Duration
	statsPath string
	tracePath string
	check     bool
	evtrace   int
	httpAddr  string
	chaos     string
	chaosPlan resilience.FaultPlan
	chaosSeed int64
	version   bool
}

// traceCapacity bounds the in-memory span trace behind -trace. At roughly
// one span per tile plus a handful per frame, 64Ki spans hold several
// frames of the largest suite benchmarks; once full, later spans are
// dropped and counted rather than growing without bound.
const traceCapacity = 1 << 16

// parseOptions parses args into options and enforces the cross-flag rules.
// Every rejection is a clear error (and a non-zero exit in main) rather
// than a silently ignored or clamped value.
func parseOptions(args []string, errOut io.Writer) (options, error) {
	var o options
	fs := flag.NewFlagSet("tcorsim", flag.ContinueOnError)
	fs.SetOutput(errOut)
	fs.StringVar(&o.benchmark, "benchmark", "CCS", "benchmark alias (see paperfig -table 2)")
	fs.StringVar(&o.specPath, "spec", "", "JSON workload profile (overrides -benchmark; see internal/workload.ParseSpec)")
	fs.StringVar(&o.config, "config", "tcor", "configuration: baseline, tcor, tcor-nol2")
	fs.IntVar(&o.sizeKB, "size", 64, "total Tile Cache size in KiB (paper: 64 or 128)")
	fs.IntVar(&o.frames, "frames", 0, "frames to simulate (0 = benchmark default)")
	fs.BoolVar(&o.compare, "compare", false, "run baseline and TCOR and print both")
	fs.StringVar(&o.policy, "policy", "", "race this replacement policy against LRU and OPT on the benchmark's PLB stream (registry name; see paperfig -arena)")
	fs.BoolVar(&o.jsonOut, "json", false, "emit a machine-readable JSON summary instead of text")
	fs.IntVar(&o.parallel, "parallel", 0, "max concurrent -compare simulations (0 = GOMAXPROCS)")
	fs.IntVar(&o.tilePar, "tile-parallel", 0, "per-tile raster planning workers within each simulation; results are identical at every level (0 or 1 = serial)")
	fs.DurationVar(&o.timeout, "timeout", 0, "abort the run after this duration (0 = no limit)")
	fs.StringVar(&o.statsPath, "stats", "", "write the full hierarchy counter dump as JSON to this file")
	fs.StringVar(&o.tracePath, "trace", "", "write a Chrome trace_event JSON span trace (chrome://tracing, Perfetto) to this file")
	fs.BoolVar(&o.check, "check", false, "verify the cross-level stats invariants after each run (violations fail the command)")
	fs.IntVar(&o.evtrace, "evtrace", 0, "record the last N L2 evictions into the -stats dump (0 = off)")
	fs.StringVar(&o.httpAddr, "http", "", "serve expvar and pprof on this address while running (e.g. :0)")
	fs.StringVar(&o.chaos, "chaos", "", `inject faults into -compare sweep jobs, e.g. "rate=0.5,lat=100ms,seed=3" (empty = off)`)
	fs.BoolVar(&o.version, "version", false, "print the build identity and exit")
	if err := fs.Parse(args); err != nil {
		return options{}, err
	}
	if fs.NArg() > 0 {
		return options{}, fmt.Errorf("unexpected arguments: %s", strings.Join(fs.Args(), " "))
	}

	if o.timeout < 0 {
		return options{}, fmt.Errorf("-timeout must be non-negative, got %v", o.timeout)
	}
	if o.frames < 0 {
		return options{}, fmt.Errorf("-frames must be non-negative, got %d", o.frames)
	}
	if o.sizeKB <= 0 {
		return options{}, fmt.Errorf("-size must be positive KiB, got %d", o.sizeKB)
	}
	if o.parallel < 0 {
		return options{}, fmt.Errorf("-parallel must be non-negative, got %d", o.parallel)
	}
	if o.tilePar < 0 {
		return options{}, fmt.Errorf("-tile-parallel must be non-negative, got %d", o.tilePar)
	}
	if o.evtrace < 0 {
		return options{}, fmt.Errorf("-evtrace must be non-negative, got %d", o.evtrace)
	}
	set := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if o.compare && set["config"] {
		return options{}, fmt.Errorf("-compare runs baseline and tcor; it conflicts with -config %s", o.config)
	}
	if set["spec"] && set["benchmark"] {
		return options{}, fmt.Errorf("-spec overrides the workload; it conflicts with -benchmark %s", o.benchmark)
	}
	if o.evtrace > 0 && o.statsPath == "" {
		return options{}, fmt.Errorf("-evtrace records into the -stats dump; pass -stats too")
	}
	if o.policy != "" {
		canonical, err := cache.CanonicalPolicyName(o.policy)
		if err != nil {
			return options{}, fmt.Errorf("-policy: %w", err)
		}
		o.policy = canonical
		// The policy race runs the PLB-level cache model, not the full GPU
		// pipeline: the flags below configure machinery it never builds.
		for _, f := range []string{"compare", "config", "spec", "chaos", "evtrace", "check", "stats", "trace", "tile-parallel"} {
			if set[f] {
				return options{}, fmt.Errorf("-policy races the PLB cache model; it conflicts with -%s", f)
			}
		}
	}
	if o.chaos != "" {
		if !o.compare {
			return options{}, fmt.Errorf("-chaos injects faults into the -compare sweep pool; pass -compare too")
		}
		plan, seed, err := resilience.ParsePlan(o.chaos)
		if err != nil {
			return options{}, err
		}
		o.chaosPlan, o.chaosSeed = plan, seed
	}
	return o, nil
}

// statsRun is one configuration's slice of the -stats JSON document.
type statsRun struct {
	Benchmark   string         `json:"benchmark"`
	Config      string         `json:"config"`
	TileCacheKB int            `json:"tileCacheKB"`
	Counters    stats.Snapshot `json:"counters"`
	L2Trace     []stats.Event  `json:"l2Trace,omitempty"`
}

// statsDoc is the top-level -stats JSON shape.
type statsDoc struct {
	Runs []statsRun `json:"runs"`
}

// collector gathers per-run registries across the (possibly concurrent)
// -compare sweep.
type collector struct {
	mu   sync.Mutex
	runs []statsRun
}

func (c *collector) add(r statsRun) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.runs = append(c.runs, r)
}

// sorted returns the runs in deterministic (benchmark, config) order, so
// the -stats file does not depend on -parallel scheduling.
func (c *collector) sorted() []statsRun {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]statsRun, len(c.runs))
	copy(out, c.runs)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Benchmark != out[j].Benchmark {
			return out[i].Benchmark < out[j].Benchmark
		}
		return out[i].Config < out[j].Config
	})
	return out
}

// runPolicy races o.policy against the LRU and OPT anchors on the selected
// benchmark through the arena engine.
func runPolicy(ctx context.Context, w io.Writer, o options) error {
	r := experiments.NewRunner()
	r.Frames = o.frames
	r.Parallel = o.parallel
	r.Ctx = ctx
	rep, err := arena.Race(ctx, r, arena.Options{
		Policies:   []string{o.policy, "LRU", "OPT"},
		Benchmarks: []string{o.benchmark},
		SizeKB:     float64(o.sizeKB),
		Parallel:   o.parallel,
	})
	if err != nil {
		return err
	}
	if o.jsonOut {
		body, err := rep.Encode()
		if err != nil {
			return err
		}
		_, err = w.Write(body)
		return err
	}
	for _, t := range rep.Tables() {
		fmt.Fprintln(w, t)
	}
	return nil
}

func run(ctx context.Context, w io.Writer, o options) error {
	if o.policy != "" {
		return runPolicy(ctx, w, o)
	}
	var spec workload.Spec
	var err error
	if o.specPath != "" {
		spec, err = workload.LoadSpec(o.specPath)
	} else {
		spec, err = workload.ByAlias(o.benchmark)
	}
	if err != nil {
		return err
	}
	if o.frames > 0 {
		spec.Frames = o.frames
	}
	scene, err := workload.Generate(spec, geom.DefaultScreen())
	if err != nil {
		return err
	}
	st := scene.Stats()
	if !o.jsonOut {
		fmt.Fprintf(w, "benchmark %s (%s): %d primitives, %.2f MiB Parameter Buffer, re-use %.2f, %d frame(s)\n\n",
			spec.Alias, spec.Name, st.Primitives,
			float64(st.PBFootprint)/(1024*1024), st.AvgPrimReuse, scene.NumFrames())
	}

	var tracer *stats.Tracer
	if o.tracePath != "" {
		tracer = stats.NewTracer(traceCapacity)
		// Sweep jobs (under -compare) pick the tracer up from the context
		// and wrap each configuration in a sweep.job span.
		ctx = stats.ContextWithTracer(ctx, tracer)
		if o.httpAddr != "" {
			stats.PublishTrace("tcorsim", tracer)
		}
	}

	if o.chaos != "" {
		// The injector rides the context into the sweep pool, where each job
		// consults the experiments.sweep site before simulating. With a
		// latency-only plan this is a live demo of fault scheduling; with an
		// error rate, some configurations fail and -compare reports it.
		inj := resilience.NewInjector(o.chaosSeed)
		inj.Arm(resilience.SiteSweep, o.chaosPlan)
		ctx = resilience.ContextWithInjector(ctx, inj)
		fmt.Fprintf(os.Stderr, "tcorsim: CHAOS MODE armed (%s) on the sweep pool\n", o.chaos)
	}

	col := &collector{}
	if o.compare {
		// Each configuration renders into its own buffer inside the sweep
		// pool; printing afterwards in slice order keeps the output stable.
		reports, err := experiments.SweepSlice(ctx, o.parallel, []string{"baseline", "tcor"},
			func(_ context.Context, c string) (string, error) {
				var b strings.Builder
				if err := simulate(&b, scene, c, o, col, tracer); err != nil {
					return "", err
				}
				return b.String(), nil
			})
		if err != nil {
			return err
		}
		for _, rep := range reports {
			fmt.Fprint(w, rep)
		}
	} else if err := simulate(w, scene, o.config, o, col, tracer); err != nil {
		return err
	}

	if o.statsPath != "" {
		blob, err := json.MarshalIndent(statsDoc{Runs: col.sorted()}, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.statsPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		if !o.jsonOut {
			fmt.Fprintln(w, "wrote stats to", o.statsPath)
		}
	}
	if o.tracePath != "" {
		if err := writeTrace(o.tracePath, tracer); err != nil {
			return err
		}
		if d := tracer.Dropped(); d > 0 {
			fmt.Fprintf(os.Stderr, "tcorsim: trace full, dropped %d spans\n", d)
		}
		if !o.jsonOut {
			fmt.Fprintln(w, "wrote trace to", o.tracePath)
		}
	}
	return nil
}

// writeTrace exports the recorded spans as Chrome trace_event JSON.
func writeTrace(path string, tracer *stats.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tracer.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func configFor(name string, sizeKB int) (gpu.Config, error) {
	bytes := sizeKB * 1024
	switch name {
	case "baseline":
		return gpu.Baseline(bytes), nil
	case "tcor":
		return gpu.TCOR(bytes), nil
	case "tcor-nol2":
		return gpu.TCORNoL2(bytes), nil
	default:
		return gpu.Config{}, fmt.Errorf("unknown config %q (baseline, tcor, tcor-nol2)", name)
	}
}

func simulate(w io.Writer, scene *workload.Scene, config string, o options, col *collector, tracer *stats.Tracer) error {
	cfg, err := configFor(config, o.sizeKB)
	if err != nil {
		return err
	}
	cfg.L2TraceDepth = o.evtrace
	cfg.TileParallel = o.tilePar
	cfg.Tracer = tracer
	cfg.TraceTiles = true // full per-tile resolution for single-run analysis
	res, err := gpu.Simulate(scene, cfg)
	if err != nil {
		return err
	}
	reg := res.StatsRegistry()
	if o.check {
		if err := reg.Check(); err != nil {
			return fmt.Errorf("%s: invariant check failed:\n%w", config, err)
		}
	}
	if o.statsPath != "" || o.httpAddr != "" {
		sr := statsRun{
			Benchmark: res.Benchmark, Config: config, TileCacheKB: o.sizeKB,
			Counters: reg.Snapshot(),
		}
		if res.L2Trace != nil {
			sr.L2Trace = res.L2Trace.Events()
		}
		col.add(sr)
		if o.httpAddr != "" {
			stats.PublishExpvar("tcorsim."+res.Benchmark+"."+config, reg)
			if res.L2Trace != nil {
				// Surfaces the eviction ring at GET /debug/events.
				stats.PublishEvents("tcorsim."+res.Benchmark+"."+config, res.L2Trace)
			}
		}
	}
	if o.jsonOut {
		pbL2, pbMem := res.L2In.PB(), res.DRAMIn.PB()
		out, err := json.MarshalIndent(summary{
			Benchmark: res.Benchmark, Config: config, TileCacheKB: o.sizeKB,
			Frames:    res.Frames,
			PBL2Reads: pbL2.Reads, PBL2Writes: pbL2.Writes,
			PBMemReads: pbMem.Reads, PBMemWrites: pbMem.Writes,
			MemReads: res.DRAM.Reads, MemWrites: res.DRAM.Writes,
			PPC: res.PPC(), FPS: res.FPS(600e6),
			HierEnergyMJ:  res.MemHierarchyPJ / 1e9,
			TotalEnergyMJ: res.TotalPJ / 1e9,
			FrameCycles:   res.FrameCycles / int64(res.Frames),
		}, "", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintln(w, string(out))
		return nil
	}

	fmt.Fprintf(w, "=== %s, %d KiB Tile Cache ===\n", config, o.sizeKB)
	pbL2 := res.L2In.PB()
	pbMem := res.DRAMIn.PB()
	fmt.Fprintf(w, "PB accesses to L2:          %8d reads %8d writes\n", pbL2.Reads, pbL2.Writes)
	fmt.Fprintf(w, "PB accesses to main memory: %8d reads %8d writes\n", pbMem.Reads, pbMem.Writes)
	fmt.Fprintf(w, "total main memory accesses: %8d reads %8d writes\n", res.DRAM.Reads, res.DRAM.Writes)
	for _, reg := range []memmap.Region{
		memmap.RegionPBLists, memmap.RegionPBAttributes, memmap.RegionTextures,
		memmap.RegionInputGeometry, memmap.RegionFrameBuffer,
	} {
		rc := res.DRAMIn.Region(reg)
		if rc.Reads+rc.Writes > 0 {
			fmt.Fprintf(w, "  memory %-16s %8d reads %8d writes\n", reg, rc.Reads, rc.Writes)
		}
	}
	if res.Kind == gpu.KindTCOR {
		a := res.AttrStats
		fmt.Fprintf(w, "attribute cache: %d reads (%.1f%% hit), %d writes (%d inserted, %d bypassed), %d stalls\n",
			a.Reads, 100*float64(a.ReadHits)/float64(max64(a.Reads, 1)),
			a.Writes, a.WriteInserts, a.WriteBypasses, a.Stalls)
		l := res.ListStats
		fmt.Fprintf(w, "prim list cache: %d accesses (%.1f%% hit)\n",
			l.Reads+l.Writes, 100*float64(l.Hits)/float64(max64(l.Reads+l.Writes, 1)))
	} else {
		ts := res.TileStats
		fmt.Fprintf(w, "tile cache: %d accesses (%.1f%% hit), %d writebacks\n",
			ts.Accesses, 100*ts.HitRatio(), ts.Writebacks)
	}
	l2 := res.L2Stats
	fmt.Fprintf(w, "L2: %d accesses (%.1f%% hit), %d writebacks, %d dropped (dead), %d dead evictions\n",
		l2.Reads+l2.Writes, 100*float64(l2.Hits)/float64(max64(l2.Reads+l2.Writes, 1)),
		l2.Writebacks, l2.DroppedWritebacks, l2.DeadEvictions)
	fmt.Fprintf(w, "tile fetcher: %.3f primitives/cycle (%d primitives over %d cycles)\n",
		res.PPC(), res.PrimReads, res.TFCycles)
	fmt.Fprintf(w, "frame: %d cycles -> %.1f FPS at 600 MHz\n",
		res.FrameCycles/int64(res.Frames), res.FPS(600e6))
	fmt.Fprintf(w, "energy: memory hierarchy %.3f mJ, total GPU %.3f mJ\n\n",
		res.MemHierarchyPJ/1e9, res.TotalPJ/1e9)
	fmt.Fprintln(w, res.Tally.String())
	if o.check {
		fmt.Fprintf(w, "invariants: ok (%d checked)\n\n", len(reg.InvariantNames()))
	}
	return nil
}

// summary is the JSON shape of one simulation under -json.
type summary struct {
	Benchmark     string  `json:"benchmark"`
	Config        string  `json:"config"`
	TileCacheKB   int     `json:"tileCacheKB"`
	Frames        int     `json:"frames"`
	PBL2Reads     int64   `json:"pbL2Reads"`
	PBL2Writes    int64   `json:"pbL2Writes"`
	PBMemReads    int64   `json:"pbMemReads"`
	PBMemWrites   int64   `json:"pbMemWrites"`
	MemReads      int64   `json:"memReads"`
	MemWrites     int64   `json:"memWrites"`
	PPC           float64 `json:"primitivesPerCycle"`
	FPS           float64 `json:"fps"`
	HierEnergyMJ  float64 `json:"memHierarchyEnergyMJ"`
	TotalEnergyMJ float64 `json:"totalGPUEnergyMJ"`
	FrameCycles   int64   `json:"frameCycles"`
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
