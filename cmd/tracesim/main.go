// Command tracesim reads a Parameter Buffer access trace in the text format
// emitted by cmd/tracegen (prim kind: "W <prim>" / "R <prim> <optnum>") and
// simulates replacement policies over it. Together with tracegen this
// closes the loop for external users: export a trace from any source,
// replay it against the policy library, compare to the OPT yardstick and
// the analytic lower bound.
//
// Usage:
//
//	tracegen -benchmark CCS -kind prim | tracesim -policies LRU,DRRIP,OPT -size 48
//	tracesim -trace ccs.trace -size 64 -ways 4
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"tcor/internal/buildinfo"
	"tcor/internal/cache"
	"tcor/internal/trace"
)

func main() {
	tracePath := flag.String("trace", "-", "trace file (- = stdin)")
	sizeKB := flag.Int("size", 48, "cache size in KiB (192 B per primitive)")
	ways := flag.Int("ways", 0, "associativity (0 = fully associative)")
	policies := flag.String("policies", "LRU,MRU,FIFO,SRRIP,DRRIP,Shepherd,Hawkeye,OPT",
		"comma-separated policies to simulate")
	version := flag.Bool("version", false, "print the build identity and exit")
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Get())
		return
	}
	if err := run(*tracePath, *sizeKB, *ways, strings.Split(*policies, ",")); err != nil {
		fmt.Fprintln(os.Stderr, "tracesim:", err)
		os.Exit(1)
	}
}

// parse reads the prim-kind trace format.
func parse(r io.Reader) (trace.Trace, error) {
	var tr trace.Trace
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		var key uint64
		switch fields[0] {
		case "W":
			if len(fields) < 2 {
				return nil, fmt.Errorf("line %d: want 'W <prim>'", lineNo)
			}
			if _, err := fmt.Sscanf(fields[1], "%d", &key); err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
			tr = append(tr, trace.Access{Key: trace.Key(key), Write: true})
		case "R":
			if len(fields) < 2 {
				return nil, fmt.Errorf("line %d: want 'R <prim> [optnum]'", lineNo)
			}
			if _, err := fmt.Sscanf(fields[1], "%d", &key); err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
			tr = append(tr, trace.Access{Key: trace.Key(key)})
		default:
			return nil, fmt.Errorf("line %d: unknown record %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return tr, nil
}

func policyByName(name string) (func() cache.Policy, error) {
	switch strings.ToUpper(name) {
	case "LRU":
		return cache.NewLRU, nil
	case "MRU":
		return cache.NewMRU, nil
	case "FIFO":
		return cache.NewFIFO, nil
	case "NRU":
		return cache.NewNRU, nil
	case "LIP":
		return cache.NewLIP, nil
	case "BIP":
		return func() cache.Policy { return cache.NewBIP(1) }, nil
	case "DIP":
		return func() cache.Policy { return cache.NewDIP(1) }, nil
	case "SRRIP":
		return cache.NewSRRIP, nil
	case "BRRIP":
		return func() cache.Policy { return cache.NewBRRIP(1) }, nil
	case "DRRIP":
		return func() cache.Policy { return cache.NewDRRIP(1) }, nil
	case "SHEPHERD":
		return func() cache.Policy { return cache.NewShepherd(1) }, nil
	case "HAWKEYE":
		return func() cache.Policy { return cache.NewHawkeye(nil) }, nil
	case "SHIP":
		return func() cache.Policy { return cache.NewSHiP(nil) }, nil
	case "RANDOM":
		return func() cache.Policy { return cache.NewRandom(1) }, nil
	case "OPT":
		return cache.NewOPT, nil
	default:
		return nil, fmt.Errorf("unknown policy %q", name)
	}
}

func run(tracePath string, sizeKB, ways int, policyNames []string) error {
	var in io.Reader = os.Stdin
	if tracePath != "-" {
		f, err := os.Open(tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	tr, err := parse(in)
	if err != nil {
		return err
	}
	if len(tr) == 0 {
		return fmt.Errorf("empty trace")
	}
	trace.AnnotateNextUse(tr)

	cp := sizeKB * 1024 / 192
	lines := cp
	if ways > 0 {
		lines = cp / ways * ways
		if lines < ways {
			lines = ways
		}
	}
	fmt.Printf("trace: %d accesses (%d writes), %d primitives; cache %d KiB = %d primitives, %s\n\n",
		len(tr), trace.Writes(tr), trace.UniqueKeys(tr), sizeKB, cp, assocName(ways))
	fmt.Printf("%-10s %10s %10s %10s %12s\n", "policy", "hits", "misses", "missratio", "writebacks")
	for _, name := range policyNames {
		mk, err := policyByName(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		st, err := cache.Simulate(cache.Config{Lines: lines, Ways: ways, WriteAllocate: true}, mk(), tr)
		if err != nil {
			return err
		}
		fmt.Printf("%-10s %10d %10d %10.3f %12d\n",
			strings.TrimSpace(name), st.Hits, st.Misses, st.MissRatio(), st.Writebacks)
	}
	fmt.Printf("%-10s %10s %10s %10.3f\n", "LowerBound", "", "",
		cache.TraceLowerBoundMissRatio(tr, cp))
	return nil
}

func assocName(ways int) string {
	if ways <= 0 {
		return "fully associative"
	}
	return fmt.Sprintf("%d-way", ways)
}

// writeFile is a small indirection for tests.
func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
