package main

import (
	"fmt"
	"strings"
	"testing"

	"tcor/internal/cache"
	"tcor/internal/trace"
)

func TestParseTrace(t *testing.T) {
	src := `
# comment
W 0
W 1
R 0 17
R 1 4095
`
	tr, err := parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 4 {
		t.Fatalf("records = %d", len(tr))
	}
	if !tr[0].Write || tr[2].Write {
		t.Error("record directions wrong")
	}
	if tr[2].Key != 0 || tr[3].Key != 1 {
		t.Error("keys wrong")
	}
}

func TestParseTraceErrors(t *testing.T) {
	for i, src := range []string{
		"W\n", "R\n", "X 1\n", "W abc\n", "R xyz 1\n",
	} {
		if _, err := parse(strings.NewReader(src)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestPolicyByName(t *testing.T) {
	for _, name := range []string{
		"LRU", "lru", "MRU", "FIFO", "NRU", "LIP", "BIP", "DIP",
		"SRRIP", "BRRIP", "DRRIP", "Shepherd", "Hawkeye", "SHiP", "Random", "OPT",
	} {
		mk, err := policyByName(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if mk() == nil {
			t.Errorf("%s: nil policy", name)
		}
	}
	if _, err := policyByName("nope"); err == nil {
		t.Error("unknown policy must fail")
	}
}

func TestRunEndToEnd(t *testing.T) {
	path := t.TempDir() + "/t.trace"
	trace := "W 0\nW 1\nW 2\nR 0 1\nR 1 2\nR 2 4095\nR 0 4095\n"
	if err := writeFile(path, trace); err != nil {
		t.Fatal(err)
	}
	if err := run(path, 48, 4, []string{"LRU", "OPT"}); err != nil {
		t.Fatal(err)
	}
	if err := run(path, 48, 0, []string{"bogus"}); err == nil {
		t.Error("bogus policy must fail")
	}
	if err := run(path+".missing", 48, 0, []string{"LRU"}); err == nil {
		t.Error("missing file must fail")
	}
}

func FuzzParseTrace(f *testing.F) {
	f.Add("W 0\nR 0 1\n")
	f.Add("# c\n\nW 12\nR 12 4095\nR 12 0\n")
	f.Add("W 18446744073709551615\nR 18446744073709551615\n")
	f.Add("  W   7  \n\t\nR 7 3\n# trailing comment")
	f.Add("W -1\n")
	f.Add("X 0\n")
	f.Add("W\n")
	f.Add("R 0xff\n")
	f.Add(strings.Repeat("W 1\nR 1\n", 64))
	f.Fuzz(func(t *testing.T, src string) {
		// Must never panic; on success the accepted records round-trip
		// through the text format and simulate cleanly under OPT and LRU.
		tr, err := parse(strings.NewReader(src))
		if err != nil {
			return
		}

		// Round trip: re-serialize the accepted trace and re-parse it.
		var b strings.Builder
		for _, a := range tr {
			if a.Write {
				fmt.Fprintf(&b, "W %d\n", uint64(a.Key))
			} else {
				fmt.Fprintf(&b, "R %d\n", uint64(a.Key))
			}
		}
		back, err := parse(strings.NewReader(b.String()))
		if err != nil {
			t.Fatalf("re-parsing serialized trace failed: %v", err)
		}
		if len(back) != len(tr) {
			t.Fatalf("round trip changed length: %d -> %d", len(tr), len(back))
		}
		for i := range tr {
			if back[i].Key != tr[i].Key || back[i].Write != tr[i].Write {
				t.Fatalf("record %d changed: %+v -> %+v", i, tr[i], back[i])
			}
		}

		// Any accepted trace must simulate without error, and Belady must
		// not lose to LRU on it (bounded to keep the fuzz iteration cheap).
		if len(tr) == 0 || len(tr) > 4096 {
			return
		}
		trace.AnnotateNextUse(tr)
		cfg := cache.Config{Lines: 8, WriteAllocate: true}
		opt, err := cache.Simulate(cfg, cache.NewOPT(), tr)
		if err != nil {
			t.Fatalf("OPT simulation rejected a parsed trace: %v", err)
		}
		lru, err := cache.Simulate(cfg, cache.NewLRU(), tr)
		if err != nil {
			t.Fatalf("LRU simulation rejected a parsed trace: %v", err)
		}
		if opt.Misses > lru.Misses {
			t.Fatalf("OPT misses %d exceed LRU's %d on a parsed trace", opt.Misses, lru.Misses)
		}
		if opt.Accesses != int64(len(tr)) || lru.Accesses != int64(len(tr)) {
			t.Fatalf("access counts diverge from trace length %d: OPT %d, LRU %d",
				len(tr), opt.Accesses, lru.Accesses)
		}
	})
}
