package main

import (
	"strings"
	"testing"
)

func TestParseTrace(t *testing.T) {
	src := `
# comment
W 0
W 1
R 0 17
R 1 4095
`
	tr, err := parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 4 {
		t.Fatalf("records = %d", len(tr))
	}
	if !tr[0].Write || tr[2].Write {
		t.Error("record directions wrong")
	}
	if tr[2].Key != 0 || tr[3].Key != 1 {
		t.Error("keys wrong")
	}
}

func TestParseTraceErrors(t *testing.T) {
	for i, src := range []string{
		"W\n", "R\n", "X 1\n", "W abc\n", "R xyz 1\n",
	} {
		if _, err := parse(strings.NewReader(src)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestPolicyByName(t *testing.T) {
	for _, name := range []string{
		"LRU", "lru", "MRU", "FIFO", "NRU", "LIP", "BIP", "DIP",
		"SRRIP", "BRRIP", "DRRIP", "Shepherd", "Hawkeye", "SHiP", "Random", "OPT",
	} {
		mk, err := policyByName(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if mk() == nil {
			t.Errorf("%s: nil policy", name)
		}
	}
	if _, err := policyByName("nope"); err == nil {
		t.Error("unknown policy must fail")
	}
}

func TestRunEndToEnd(t *testing.T) {
	path := t.TempDir() + "/t.trace"
	trace := "W 0\nW 1\nW 2\nR 0 1\nR 1 2\nR 2 4095\nR 0 4095\n"
	if err := writeFile(path, trace); err != nil {
		t.Fatal(err)
	}
	if err := run(path, 48, 4, []string{"LRU", "OPT"}); err != nil {
		t.Fatal(err)
	}
	if err := run(path, 48, 0, []string{"bogus"}); err == nil {
		t.Error("bogus policy must fail")
	}
	if err := run(path+".missing", 48, 0, []string{"LRU"}); err == nil {
		t.Error("missing file must fail")
	}
}

func FuzzParseTrace(f *testing.F) {
	f.Add("W 0\nR 0 1\n")
	f.Add("# c\n\nW 12\nR 12 4095\nR 12 0\n")
	f.Fuzz(func(t *testing.T, src string) {
		// Must never panic; on success every record is W or R with a key.
		tr, err := parse(strings.NewReader(src))
		if err != nil {
			return
		}
		for _, a := range tr {
			_ = a.Key
		}
	})
}
