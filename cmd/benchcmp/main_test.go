package main

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: tcor
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkHeadline-8          	      10	 120000000 ns/op	        13.80 %hier-energy(paper:13.8)	 5808056 B/op	    7434 allocs/op
BenchmarkHeadline-8          	      12	 100000000 ns/op	        13.80 %hier-energy(paper:13.8)	 5808000 B/op	    7400 allocs/op
BenchmarkFrameParallel/workers=1-8   	       8	 140000000 ns/op	         7.156 frames/s	 6116584 B/op	   12678 allocs/op
BenchmarkFrameParallel/workers=2-8   	       9	 147000000 ns/op	         6.786 frames/s	10874328 B/op	   19769 allocs/op
PASS
ok  	tcor	0.704s
`

func TestParseTakesMinimaAndStripsProcSuffix(t *testing.T) {
	got, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	h, ok := got["BenchmarkHeadline"]
	if !ok {
		t.Fatalf("no BenchmarkHeadline in %v", got)
	}
	if h.NsPerOp != 100000000 || h.AllocsPerOp != 7400 || h.Samples != 2 {
		t.Fatalf("headline = %+v", h)
	}
	if _, ok := got["BenchmarkFrameParallel/workers=2"]; !ok {
		t.Fatalf("sub-benchmark name mangled: %v", got)
	}
}

func TestParseRejectsEmptyInput(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\nok\n")); err == nil {
		t.Fatal("empty input must fail")
	}
}

// TestSnapshotThenCompare drives the two modes end to end through run():
// identical input passes the gate, a slowed-down and alloc-heavier rerun
// fails it with exit code 1, and an ungated benchmark may regress freely.
func TestSnapshotThenCompare(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "BENCH_baseline.json")

	if code := run([]string{"-snapshot", base, "-commit", "abc123"},
		strings.NewReader(sampleOutput), &strings.Builder{}, &strings.Builder{}); code != 0 {
		t.Fatalf("snapshot exit = %d", code)
	}
	data, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"commit": "abc123"`) {
		t.Fatalf("snapshot missing commit: %s", data)
	}

	var out, errOut strings.Builder
	if code := run([]string{"-baseline", base},
		strings.NewReader(sampleOutput), &out, &errOut); code != 0 {
		t.Fatalf("self-compare exit = %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "no regressions") {
		t.Fatalf("self-compare output: %s", out.String())
	}

	regressed := strings.ReplaceAll(sampleOutput, " 100000000 ns/op", " 200000000 ns/op")
	regressed = strings.ReplaceAll(regressed, " 120000000 ns/op", " 200000000 ns/op")
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-baseline", base},
		strings.NewReader(regressed), &out, &errOut); code != 1 {
		t.Fatalf("regressed compare exit = %d, want 1: %s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "BenchmarkHeadline: ns/op") {
		t.Fatalf("failure report: %s", errOut.String())
	}

	// The same slowdown outside the gate passes.
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-baseline", base, "-gate", "FrameParallel"},
		strings.NewReader(regressed), &out, &errOut); code != 0 {
		t.Fatalf("ungated regression exit = %d: %s", code, errOut.String())
	}
}

func TestCompareFlagsMissingBenchmark(t *testing.T) {
	base, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	cur, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	delete(cur, "BenchmarkHeadline")
	_, failures := compare(base, cur, regexp.MustCompile("Headline"), 0.15)
	if len(failures) != 1 || !strings.Contains(failures[0], "missing") {
		t.Fatalf("failures = %v", failures)
	}
}

func TestRunFlagValidation(t *testing.T) {
	var errOut strings.Builder
	if code := run(nil, strings.NewReader(""), &strings.Builder{}, &errOut); code != 2 {
		t.Fatalf("no mode: exit %d", code)
	}
	if code := run([]string{"-snapshot", "x", "-baseline", "y"},
		strings.NewReader(""), &strings.Builder{}, &errOut); code != 2 {
		t.Fatalf("both modes: exit %d", code)
	}
	if code := run([]string{"-baseline", "y", "-threshold", "-1"},
		strings.NewReader(""), &strings.Builder{}, &errOut); code != 2 {
		t.Fatalf("bad threshold: exit %d", code)
	}
}
