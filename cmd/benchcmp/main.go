// Command benchcmp snapshots `go test -bench` output into a JSON baseline
// and compares later runs against it, failing on regressions. It is the CI
// bench gate for the parallel frame core (docs/MODEL.md §12):
//
//	go test -run '^$' -bench 'Headline|TableII_Workloads|FrameParallel' \
//	    -benchmem -count 10 . | benchcmp -snapshot BENCH_baseline.json
//
//	go test -run '^$' -bench ... -benchmem -count 10 . | \
//	    benchcmp -baseline BENCH_baseline.json -threshold 0.15
//
// The snapshot keeps, per benchmark, the minimum ns/op and allocs/op across
// the -count repetitions: minima are the low-noise statistic for "how fast
// can this go on this machine", and a regression must push even the best
// repetition past the threshold to fail the gate, so one noisy run cannot.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark's snapshot: best-of-count ns/op and allocs/op plus
// how many repetitions fed the minimum.
type Entry struct {
	NsPerOp     float64 `json:"ns_op"`
	AllocsPerOp float64 `json:"allocs_op"`
	Samples     int     `json:"samples"`
}

// Baseline is the committed BENCH_baseline.json shape.
type Baseline struct {
	// Commit records the git SHA the snapshot was taken at (informational).
	Commit     string           `json:"commit,omitempty"`
	Benchmarks map[string]Entry `json:"benchmarks"`
}

// benchLine matches one `go test -bench` result line. The trailing -N
// (GOMAXPROCS) is stripped from the name so snapshots from machines with
// different core counts address the same benchmark.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

// parse reduces a `go test -bench` stream to per-benchmark minima.
func parse(r io.Reader) (map[string]Entry, error) {
	out := make(map[string]Entry)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := m[1]
		ns, allocs := math.NaN(), math.NaN()
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchcmp: bad value %q in %q", fields[i], sc.Text())
			}
			switch fields[i+1] {
			case "ns/op":
				ns = v
			case "allocs/op":
				allocs = v
			}
		}
		if math.IsNaN(ns) {
			return nil, fmt.Errorf("benchcmp: no ns/op in %q", sc.Text())
		}
		e, seen := out[name]
		if !seen {
			e = Entry{NsPerOp: ns, AllocsPerOp: allocs}
		} else {
			e.NsPerOp = math.Min(e.NsPerOp, ns)
			if !math.IsNaN(allocs) {
				e.AllocsPerOp = math.Min(e.AllocsPerOp, allocs)
			}
		}
		e.Samples++
		out[name] = e
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("benchcmp: no benchmark lines in input")
	}
	return out, nil
}

// compare reports the regressions of cur against base under threshold,
// restricted to names matching gate. It returns a human-readable report and
// the list of failures.
func compare(base, cur map[string]Entry, gate *regexp.Regexp, threshold float64) (string, []string) {
	var b strings.Builder
	var failures []string
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if !gate.MatchString(name) {
			continue
		}
		want := base[name]
		got, ok := cur[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: missing from current run", name))
			continue
		}
		check := func(metric string, baseV, curV float64) {
			if math.IsNaN(baseV) || math.IsNaN(curV) || baseV == 0 {
				return
			}
			ratio := curV / baseV
			status := "ok"
			if ratio > 1+threshold {
				status = "REGRESSION"
				failures = append(failures, fmt.Sprintf("%s: %s %.4g -> %.4g (%+.1f%%, limit %+.0f%%)",
					name, metric, baseV, curV, 100*(ratio-1), 100*threshold))
			}
			fmt.Fprintf(&b, "%-60s %-10s %12.4g %12.4g %+7.1f%%  %s\n",
				name, metric, baseV, curV, 100*(ratio-1), status)
		}
		check("ns/op", want.NsPerOp, got.NsPerOp)
		check("allocs/op", want.AllocsPerOp, got.AllocsPerOp)
	}
	return b.String(), failures
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchcmp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	snapshot := fs.String("snapshot", "", "write the parsed benchmarks as a JSON baseline to this file")
	baselinePath := fs.String("baseline", "", "compare the input against this JSON baseline")
	threshold := fs.Float64("threshold", 0.15, "fail when ns/op or allocs/op exceeds baseline by more than this fraction")
	gateExpr := fs.String("gate", "Headline|TableII_Workloads|FrameParallel|PolicySimulate|TraceparentInjectExtract|TracePropagationDisabled", "regexp selecting the gated benchmarks")
	commit := fs.String("commit", "", "git SHA to record in the snapshot")
	input := fs.String("in", "", "read `go test -bench` output from this file instead of stdin")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if (*snapshot == "") == (*baselinePath == "") {
		fmt.Fprintln(stderr, "benchcmp: exactly one of -snapshot or -baseline is required")
		return 2
	}
	if *threshold <= 0 {
		fmt.Fprintln(stderr, "benchcmp: -threshold must be positive")
		return 2
	}
	gate, err := regexp.Compile(*gateExpr)
	if err != nil {
		fmt.Fprintln(stderr, "benchcmp: bad -gate:", err)
		return 2
	}
	in := stdin
	if *input != "" {
		f, err := os.Open(*input)
		if err != nil {
			fmt.Fprintln(stderr, "benchcmp:", err)
			return 2
		}
		defer f.Close()
		in = f
	}
	cur, err := parse(in)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	if *snapshot != "" {
		data, err := json.MarshalIndent(Baseline{Commit: *commit, Benchmarks: cur}, "", "  ")
		if err != nil {
			fmt.Fprintln(stderr, "benchcmp:", err)
			return 2
		}
		if err := os.WriteFile(*snapshot, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(stderr, "benchcmp:", err)
			return 2
		}
		fmt.Fprintf(stdout, "benchcmp: wrote %d benchmarks to %s\n", len(cur), *snapshot)
		return 0
	}

	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintln(stderr, "benchcmp:", err)
		return 2
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(stderr, "benchcmp: parsing %s: %v\n", *baselinePath, err)
		return 2
	}
	report, failures := compare(base.Benchmarks, cur, gate, *threshold)
	fmt.Fprint(stdout, report)
	if len(failures) > 0 {
		fmt.Fprintf(stderr, "benchcmp: %d regression(s) beyond %.0f%%:\n", len(failures), 100**threshold)
		for _, f := range failures {
			fmt.Fprintln(stderr, "  "+f)
		}
		return 1
	}
	fmt.Fprintln(stdout, "benchcmp: no regressions")
	return 0
}

func main() { os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr)) }
