// Command tcord is the simulation daemon: it serves the TBR GPU model over
// a versioned JSON HTTP API so repeated studies share one process, one
// result cache and one admission policy instead of shelling into tcorsim
// per run.
//
// Usage:
//
//	tcord                                  # serve on :8344
//	tcord -addr 127.0.0.1:9000 -workers 4 -queue 16
//	tcord -debug :8345                     # expvar + pprof alongside the API
//	tcord -chaos "rate=0.1,lat=50ms,codes=500|503,seed=7"  # fault injection
//	tcord -shards host:8344,host:8345      # gateway over shard daemons
//	tcord -tenants tenants.json            # multi-tenant QoS roster
//	tcord -jobs-dir /var/lib/tcord/jobs    # durable async jobs (?async=1)
//	tcord -version
//
// With -shards the process is a cluster gateway instead of a simulation
// daemon: it serves the same API, routes each simulation to the shard
// owning its content address on a consistent-hash ring, hedges slow
// requests onto the next replica, and fans sweeps out as per-shard
// sub-sweeps merged byte-identically. In gateway mode -chaos arms the
// proxy site (gw.proxy): injected faults abort upstream attempts and are
// absorbed by failover.
//
// Endpoints:
//
//	POST /v1/simulate   run (or fetch from cache) one simulation
//	POST /v1/sweep      run a batch through the bounded worker pool
//	POST /v1/arena      race a replacement-policy roster, ranked vs OPT
//	GET  /v1/jobs       durable async jobs (-jobs-dir): list, poll, cancel,
//	                    fetch results; submissions are ?async=1 on the POSTs
//	GET  /v1/benchmarks list the built-in Table II suite
//	GET  /v1/version    build identity (module version, VCS revision)
//	GET  /v1/stats      serving-layer metrics snapshot
//	GET  /healthz       liveness        GET /readyz  readiness (503 draining)
//
// The daemon drains gracefully on SIGINT/SIGTERM: readiness flips to 503,
// queued and in-flight simulations finish (bounded by -drain), then the
// process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"tcor/internal/buildinfo"
	"tcor/internal/cluster"
	"tcor/internal/resilience"
	"tcor/internal/serve"
	"tcor/internal/stats"
)

func main() {
	opts, err := parseOptions(os.Args[1:], os.Stderr)
	if err != nil {
		if err != flag.ErrHelp {
			fmt.Fprintln(os.Stderr, "tcord:", err)
		}
		os.Exit(2)
	}
	if opts.version {
		fmt.Println(buildinfo.Get())
		return
	}
	if err := run(opts); err != nil {
		fmt.Fprintln(os.Stderr, "tcord:", err)
		os.Exit(1)
	}
}

// options is the parsed and validated command line.
type options struct {
	addr      string
	debugAddr string
	workers   int
	tilePar   int
	queue     int
	cache     int
	timeout   time.Duration
	drain     time.Duration
	logFormat string
	traceCap  int
	version   bool

	chaos     string
	chaosPlan resilience.FaultPlan
	chaosSeed int64
	breaker   bool
	cacheTTL  time.Duration
	maxStale  time.Duration

	shards []string
	vnodes int
	hedge  time.Duration

	tenantsPath string
	tenants     *serve.TenantSet
	jobsDir     string
	jobWorkers  int
}

// parseOptions parses args into options and enforces the flag rules; every
// rejection is a clear error rather than a silently clamped value.
func parseOptions(args []string, errOut io.Writer) (options, error) {
	var o options
	fs := flag.NewFlagSet("tcord", flag.ContinueOnError)
	fs.SetOutput(errOut)
	fs.StringVar(&o.addr, "addr", ":8344", "API listen address (host:port; :0 picks a free port)")
	fs.StringVar(&o.debugAddr, "debug", "", "serve expvar and pprof on this address (e.g. :8345; empty = off)")
	fs.IntVar(&o.workers, "workers", 0, "max concurrent simulations (0 = GOMAXPROCS)")
	fs.IntVar(&o.tilePar, "tile-parallel", 0, "per-tile raster planning workers within each simulation; results and cache keys are identical at every level (0 or 1 = serial)")
	fs.IntVar(&o.queue, "queue", 64, "max requests waiting for a worker before 429s (0 = reject when all workers busy)")
	fs.IntVar(&o.cache, "cache", 256, "result cache capacity in entries, LRU-evicted (0 = unbounded)")
	fs.DurationVar(&o.timeout, "timeout", time.Minute, "default per-request deadline")
	fs.DurationVar(&o.drain, "drain", 30*time.Second, "graceful-shutdown drain budget")
	fs.StringVar(&o.logFormat, "log", "text", "access/lifecycle log format: text, json or off")
	fs.IntVar(&o.traceCap, "trace-spans", 4096, "span capacity of GET /debug/trace; on a gateway also sizes the buffer behind /v1/cluster/trace (0 = tracing off)")
	fs.StringVar(&o.chaos, "chaos", "", `inject faults into requests, e.g. "rate=0.1,lat=50ms,codes=500|503,seed=7" (empty = off)`)
	fs.BoolVar(&o.breaker, "breaker", true, "guard the simulation path with a circuit breaker (503 + stale cache when open)")
	fs.DurationVar(&o.cacheTTL, "cache-ttl", 0, "result-cache entry freshness bound (0 = fresh forever)")
	fs.DurationVar(&o.maxStale, "max-stale", time.Hour, "how far past -cache-ttl an entry may be served while the breaker is open (0 = never)")
	fs.BoolVar(&o.version, "version", false, "print the build identity and exit")
	var shards string
	fs.StringVar(&shards, "shards", "", "run as a cluster gateway over these shard daemons (comma-separated host:port or http://host:port; empty = serve simulations directly)")
	fs.IntVar(&o.vnodes, "vnodes", 0, "virtual nodes per shard on the gateway's consistent-hash ring (0 = 64)")
	fs.DurationVar(&o.hedge, "hedge", 0, "gateway hedge delay before duplicating a slow request to the next shard (0 = adaptive p99, negative = off)")
	fs.StringVar(&o.tenantsPath, "tenants", "", `multi-tenant roster JSON file: {"api-key": {"name", "weight", "maxInflight", "maxQueued", "cacheShare"}, ...}; "*" names the anonymous tenant (empty = one anonymous tenant owning the machine)`)
	fs.StringVar(&o.jobsDir, "jobs-dir", "", "directory for durable async jobs: ?async=1 submissions persist their progress under it and resume after a restart (empty = async requests answer 400)")
	fs.IntVar(&o.jobWorkers, "job-workers", 0, "max concurrently executing background jobs (0 = half of -workers, min 1)")
	if err := fs.Parse(args); err != nil {
		return options{}, err
	}
	if fs.NArg() > 0 {
		return options{}, fmt.Errorf("unexpected arguments: %s", strings.Join(fs.Args(), " "))
	}
	if o.workers < 0 {
		return options{}, fmt.Errorf("-workers must be non-negative, got %d", o.workers)
	}
	if o.tilePar < 0 {
		return options{}, fmt.Errorf("-tile-parallel must be non-negative, got %d", o.tilePar)
	}
	if o.queue < 0 {
		return options{}, fmt.Errorf("-queue must be non-negative, got %d", o.queue)
	}
	if o.cache < 0 {
		return options{}, fmt.Errorf("-cache must be non-negative, got %d", o.cache)
	}
	if o.timeout <= 0 {
		return options{}, fmt.Errorf("-timeout must be positive, got %v", o.timeout)
	}
	if o.drain <= 0 {
		return options{}, fmt.Errorf("-drain must be positive, got %v", o.drain)
	}
	switch o.logFormat {
	case "text", "json", "off":
	default:
		return options{}, fmt.Errorf("-log must be text, json or off, got %q", o.logFormat)
	}
	if o.traceCap < 0 {
		return options{}, fmt.Errorf("-trace-spans must be non-negative, got %d", o.traceCap)
	}
	if o.chaos != "" {
		plan, seed, err := resilience.ParsePlan(o.chaos)
		if err != nil {
			return options{}, err
		}
		o.chaosPlan, o.chaosSeed = plan, seed
	}
	if o.cacheTTL < 0 {
		return options{}, fmt.Errorf("-cache-ttl must be non-negative, got %v", o.cacheTTL)
	}
	if o.maxStale < 0 {
		return options{}, fmt.Errorf("-max-stale must be non-negative, got %v", o.maxStale)
	}
	if shards != "" {
		for _, sh := range strings.Split(shards, ",") {
			sh = strings.TrimSpace(sh)
			if sh == "" {
				return options{}, fmt.Errorf("-shards has an empty entry")
			}
			if !strings.Contains(sh, "://") {
				sh = "http://" + sh
			}
			o.shards = append(o.shards, sh)
		}
	}
	if o.vnodes < 0 {
		return options{}, fmt.Errorf("-vnodes must be non-negative, got %d", o.vnodes)
	}
	if len(o.shards) == 0 && (o.vnodes != 0 || o.hedge != 0) {
		return options{}, fmt.Errorf("-vnodes and -hedge only apply in gateway mode (-shards)")
	}
	if o.jobWorkers < 0 {
		return options{}, fmt.Errorf("-job-workers must be non-negative, got %d", o.jobWorkers)
	}
	if o.jobWorkers != 0 && o.jobsDir == "" {
		return options{}, fmt.Errorf("-job-workers needs -jobs-dir")
	}
	if len(o.shards) > 0 && (o.tenantsPath != "" || o.jobsDir != "" || o.jobWorkers != 0) {
		// The gateway forwards credentials and routes jobs to shards; the
		// roster and the store live on the shards themselves.
		return options{}, fmt.Errorf("-tenants, -jobs-dir and -job-workers only apply in daemon mode (without -shards)")
	}
	if o.tenantsPath != "" {
		data, err := os.ReadFile(o.tenantsPath)
		if err != nil {
			return options{}, fmt.Errorf("-tenants: %w", err)
		}
		ts, err := serve.ParseTenants(data)
		if err != nil {
			return options{}, fmt.Errorf("-tenants %s: %w", o.tenantsPath, err)
		}
		o.tenants = ts
	}
	return o, nil
}

// newLogger builds the daemon's structured logger from the -log flag.
func newLogger(format string) *slog.Logger {
	switch format {
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil))
	case "off":
		return slog.New(slog.DiscardHandler)
	default:
		return slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
}

// serveOptions maps the command line onto the server configuration.
// QueueDepth/CacheEntries/TraceCapacity use -1 for "explicitly zero"
// because the Options zero value means "default".
func serveOptions(o options) serve.Options {
	so := serve.Options{
		Workers:        o.workers,
		TileParallel:   o.tilePar,
		QueueDepth:     o.queue,
		CacheEntries:   o.cache,
		DefaultTimeout: o.timeout,
		TraceCapacity:  o.traceCap,
		Logger:         newLogger(o.logFormat),
		CacheTTL:       o.cacheTTL,
		MaxStale:       o.maxStale,
		Tenants:        o.tenants,
		JobsDir:        o.jobsDir,
		JobWorkers:     o.jobWorkers,
	}
	if o.queue == 0 {
		so.QueueDepth = -1
	}
	if o.cache == 0 {
		so.CacheEntries = -1
	}
	if o.traceCap == 0 {
		so.TraceCapacity = -1
	}
	if o.chaos != "" {
		// The daemon registry meters the injector, so chaos.* counters show
		// up in /v1/stats and /metrics next to what they perturb. Only the
		// HTTP site is armed from the flag; the simulate/sweep sites are
		// test hooks.
		so.Registry = stats.NewRegistry()
		inj := resilience.NewInjector(o.chaosSeed).Meter(so.Registry)
		inj.Arm(resilience.SiteHTTP, o.chaosPlan)
		so.Chaos = inj
	}
	if o.breaker {
		so.Breaker = &resilience.BreakerConfig{}
	}
	return so
}

// gatewayOptions maps the command line onto the gateway configuration.
func gatewayOptions(o options) cluster.Options {
	co := cluster.Options{
		Shards:        o.shards,
		VNodes:        o.vnodes,
		HedgeAfter:    o.hedge,
		TraceCapacity: o.traceCap,
		Logger:        newLogger(o.logFormat),
	}
	if o.traceCap == 0 {
		co.TraceCapacity = -1
	}
	if o.chaos != "" {
		co.Registry = stats.NewRegistry()
		inj := resilience.NewInjector(o.chaosSeed).Meter(co.Registry)
		inj.Arm(resilience.SiteProxy, o.chaosPlan)
		co.Chaos = inj
	}
	return co
}

// runGateway is run for gateway mode: same lifecycle (debug server,
// signal-driven drain, invariant check at exit) around a cluster.Gateway.
func runGateway(o options) error {
	gw, err := cluster.NewGateway(gatewayOptions(o))
	if err != nil {
		return err
	}
	if o.debugAddr != "" {
		stats.PublishExpvar("tcord", gw.Registry())
		addr, stop, err := stats.ServeDebug(o.debugAddr)
		if err != nil {
			return err
		}
		defer stop()
		fmt.Fprintf(os.Stderr, "tcord: debug server on http://%s/debug/vars\n", addr)
	}
	addr, err := gw.Start(o.addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "tcord: %s\n", buildinfo.Get())
	fmt.Fprintf(os.Stderr, "tcord: gateway on http://%s over %d shards\n", addr, len(o.shards))
	if o.chaos != "" {
		fmt.Fprintf(os.Stderr, "tcord: CHAOS MODE armed (%s) at the proxy site\n", o.chaos)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	fmt.Fprintf(os.Stderr, "tcord: received %v, draining (budget %v)\n", got, o.drain)

	ctx, cancel := context.WithTimeout(context.Background(), o.drain)
	defer cancel()
	if err := gw.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain incomplete: %w", err)
	}
	if err := gw.CheckInvariants(); err != nil {
		return fmt.Errorf("gateway invariants violated at shutdown: %w", err)
	}
	return nil
}

func run(o options) error {
	if len(o.shards) > 0 {
		return runGateway(o)
	}
	srv := serve.NewServer(serveOptions(o))
	if err := srv.JobsInitError(); err != nil {
		// A daemon asked for durable jobs must not run silently degraded:
		// an operator who set -jobs-dir is owed crash-surviving jobs, not a
		// 503 discovered at the first async submission.
		return fmt.Errorf("durable job store (-jobs-dir %s): %w", o.jobsDir, err)
	}

	if o.debugAddr != "" {
		stats.PublishExpvar("tcord", srv.Registry())
		stats.PublishTrace("tcord", srv.Tracer())
		addr, stop, err := stats.ServeDebug(o.debugAddr)
		if err != nil {
			return err
		}
		defer stop()
		fmt.Fprintf(os.Stderr, "tcord: debug server on http://%s/debug/vars\n", addr)
	}

	addr, err := srv.Start(o.addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "tcord: %s\n", buildinfo.Get())
	fmt.Fprintf(os.Stderr, "tcord: serving on http://%s\n", addr)
	if o.tenants != nil {
		fmt.Fprintf(os.Stderr, "tcord: %d tenants loaded from %s\n", len(o.tenants.Tenants()), o.tenantsPath)
	}
	if o.jobsDir != "" {
		fmt.Fprintf(os.Stderr, "tcord: durable jobs under %s\n", o.jobsDir)
	}
	if o.chaos != "" {
		fmt.Fprintf(os.Stderr, "tcord: CHAOS MODE armed (%s) — responses include injected faults\n", o.chaos)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	fmt.Fprintf(os.Stderr, "tcord: received %v, draining (budget %v)\n", got, o.drain)

	ctx, cancel := context.WithTimeout(context.Background(), o.drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain incomplete: %w", err)
	}
	if err := srv.CheckInvariants(); err != nil {
		return fmt.Errorf("serving-layer invariants violated at shutdown: %w", err)
	}
	return nil
}
