package main

import (
	"context"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"tcor/internal/serve"
	"tcor/internal/serve/client"
)

func TestParseOptionsValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		bad  bool
	}{
		{"defaults", nil, false},
		{"full", []string{"-addr", ":0", "-debug", ":0", "-workers", "2",
			"-queue", "4", "-cache", "8", "-timeout", "5s", "-drain", "1s"}, false},
		{"version", []string{"-version"}, false},
		{"zero queue ok", []string{"-queue", "0"}, false},
		{"chaos plan", []string{"-chaos", "rate=0.2,lat=5ms,codes=500|503,seed=7"}, false},
		{"chaos bad rate", []string{"-chaos", "rate=1.5"}, true},
		{"chaos bad key", []string{"-chaos", "turbo=1"}, true},
		{"chaos bad code", []string{"-chaos", "codes=99"}, true},
		{"breaker off", []string{"-breaker=false"}, false},
		{"cache ttl", []string{"-cache-ttl", "1m", "-max-stale", "1h"}, false},
		{"negative cache ttl", []string{"-cache-ttl", "-1s"}, true},
		{"negative max stale", []string{"-max-stale", "-1s"}, true},
		{"negative workers", []string{"-workers", "-1"}, true},
		{"negative queue", []string{"-queue", "-1"}, true},
		{"negative cache", []string{"-cache", "-1"}, true},
		{"zero timeout", []string{"-timeout", "0"}, true},
		{"zero drain", []string{"-drain", "0"}, true},
		{"positional args", []string{"extra"}, true},
		{"unknown flag", []string{"-nope"}, true},
		{"gateway", []string{"-shards", "localhost:8344,localhost:8345"}, false},
		{"gateway with hedge", []string{"-shards", "localhost:8344", "-hedge", "100ms", "-vnodes", "32"}, false},
		{"gateway empty shard", []string{"-shards", "localhost:8344,,localhost:8345"}, true},
		{"hedge without shards", []string{"-hedge", "100ms"}, true},
		{"vnodes without shards", []string{"-vnodes", "32"}, true},
		{"negative vnodes", []string{"-shards", "localhost:8344", "-vnodes", "-1"}, true},
		{"jobs dir", []string{"-jobs-dir", "jobs"}, false},
		{"jobs dir with workers", []string{"-jobs-dir", "jobs", "-job-workers", "2"}, false},
		{"job workers without jobs dir", []string{"-job-workers", "2"}, true},
		{"negative job workers", []string{"-jobs-dir", "jobs", "-job-workers", "-1"}, true},
		{"tenants missing file", []string{"-tenants", "/nonexistent/tenants.json"}, true},
		{"tenants in gateway mode", []string{"-shards", "localhost:8344", "-tenants", "t.json"}, true},
		{"jobs dir in gateway mode", []string{"-shards", "localhost:8344", "-jobs-dir", "jobs"}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseOptions(tc.args, io.Discard)
			if tc.bad && err == nil {
				t.Fatalf("parseOptions(%v) accepted, want an error", tc.args)
			}
			if !tc.bad && err != nil {
				t.Fatalf("parseOptions(%v) = %v, want success", tc.args, err)
			}
		})
	}
}

func TestServeOptionsMapping(t *testing.T) {
	o, err := parseOptions([]string{"-queue", "0", "-cache", "0"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	so := serveOptions(o)
	if so.QueueDepth != -1 {
		t.Fatalf("QueueDepth = %d for -queue 0, want -1 (explicit no-queue)", so.QueueDepth)
	}
	if so.CacheEntries != -1 {
		t.Fatalf("CacheEntries = %d for -cache 0, want -1 (unbounded)", so.CacheEntries)
	}
	if so.Chaos != nil {
		t.Fatal("Chaos armed without -chaos")
	}
	if so.Breaker == nil {
		t.Fatal("Breaker off by default; -breaker defaults to true")
	}

	o, err = parseOptions([]string{"-chaos", "rate=0.1,seed=3", "-breaker=false",
		"-cache-ttl", "90s", "-max-stale", "2h"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	so = serveOptions(o)
	if so.Chaos == nil {
		t.Fatal("-chaos did not arm an injector")
	}
	if so.Registry == nil {
		t.Fatal("-chaos must supply a registry so chaos counters surface in /v1/stats")
	}
	if so.Breaker != nil {
		t.Fatal("-breaker=false still configured a breaker")
	}
	if so.CacheTTL != 90*time.Second || so.MaxStale != 2*time.Hour {
		t.Fatalf("cache freshness mapped as (%v, %v), want (90s, 2h)", so.CacheTTL, so.MaxStale)
	}
}

// TestTenantsFlag pins the -tenants contract: a valid roster file loads and
// rides into serve.Options together with the job flags; a misconfigured one
// refuses to start the daemon instead of silently degrading.
func TestTenantsFlag(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "tenants.json")
	if err := os.WriteFile(good, []byte(`{
		"key-a": {"name": "alpha", "weight": 3, "maxInflight": 2},
		"*":     {"name": "default", "weight": 1}
	}`), 0o600); err != nil {
		t.Fatal(err)
	}
	o, err := parseOptions([]string{"-tenants", good, "-jobs-dir", filepath.Join(dir, "jobs"), "-job-workers", "2"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if o.tenants == nil || o.tenants.TotalWeight() != 4 {
		t.Fatalf("roster did not load: %+v", o.tenants)
	}
	so := serveOptions(o)
	if so.Tenants != o.tenants || so.JobsDir != o.jobsDir || so.JobWorkers != 2 {
		t.Fatalf("tenancy/jobs flags did not map into serve.Options: %+v", so)
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"k": {"name": "a", "weight": 0}}`), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := parseOptions([]string{"-tenants", bad}, io.Discard); err == nil {
		t.Fatal("a zero-weight tenant roster was accepted")
	}
}

// TestShardNormalization pins the -shards address forms: bare host:port
// gains the http scheme, explicit URLs pass through.
func TestShardNormalization(t *testing.T) {
	o, err := parseOptions([]string{"-shards", "localhost:8344, https://other:9000 ,10.0.0.1:80"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"http://localhost:8344", "https://other:9000", "http://10.0.0.1:80"}
	if len(o.shards) != len(want) {
		t.Fatalf("parsed %d shards, want %d", len(o.shards), len(want))
	}
	for i := range want {
		if o.shards[i] != want[i] {
			t.Fatalf("shard %d = %q, want %q", i, o.shards[i], want[i])
		}
	}
	co := gatewayOptions(o)
	if len(co.Shards) != 3 {
		t.Fatalf("gatewayOptions carries %d shards, want 3", len(co.Shards))
	}
}

// TestDaemonEndToEnd exercises the daemon's serving stack in process: start
// on a free port, simulate through the typed client, drain.
func TestDaemonEndToEnd(t *testing.T) {
	o, err := parseOptions([]string{"-addr", "127.0.0.1:0", "-workers", "2"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer(serveOptions(o))
	addr, err := srv.Start(o.addr)
	if err != nil {
		t.Fatal(err)
	}
	c := client.New("http://"+addr, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c.Ready(ctx); err != nil {
		t.Fatalf("Ready: %v", err)
	}
	rr, _, err := c.Simulate(ctx, serve.SimulateRequest{Benchmark: "GTr", Frames: 1, Check: true})
	if err != nil {
		t.Fatal(err)
	}
	if rr.Benchmark != "GTr" {
		t.Fatalf("served benchmark = %q, want GTr", rr.Benchmark)
	}
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := srv.CheckInvariants(); err != nil {
		t.Fatalf("serving-layer invariants at shutdown: %v", err)
	}
}
